// Package rtl is a small register-transfer-level intermediate
// representation: named input ports, shared combinational wires, registers
// with next-state expressions, and outputs. It exists so the benchmark
// generator (internal/bench) can describe circuits the way the ITC99
// sources do — words, muxed loads, counters, FSM state — and have the mini
// synthesis flow (internal/synth) lower them to a flattened gate-level
// netlist with register names preserved on flip-flop outputs, reproducing
// the experimental setup of DAC'15 §3.
//
// Expressions come in two levels. Word-level Expr nodes (Ref, Const, Not,
// Bin, Add, Inc, Mux, Concat, EqConst, RedOr) describe multi-bit dataflow
// and are bit-blasted by the synthesizer. Bit-level BitExpr nodes (BRef,
// BConst, BOp) describe exact gate structure; the generator uses them where
// per-bit structural control matters (the partially-similar words at the
// heart of the paper).
package rtl

import (
	"fmt"

	"gatewords/internal/logic"
)

// Expr is a word-level expression. Width returns the expression's bit width
// given the design's signal table.
type Expr interface {
	exprNode()
}

// Ref reads a named signal (input, wire, or register output).
type Ref struct{ Name string }

// Const is a constant word; Bits[0] is bit 0 (LSB).
type Const struct{ Bits []bool }

// ConstUint builds a Const of the given width from an unsigned value.
func ConstUint(v uint64, width int) Const {
	bits := make([]bool, width)
	for i := 0; i < width; i++ {
		bits[i] = v>>uint(i)&1 == 1
	}
	return Const{Bits: bits}
}

// Not is bitwise complement.
type Not struct{ A Expr }

// Bin is a bitwise binary operation; Kind must be one of And, Or, Xor,
// Nand, Nor, Xnor.
type Bin struct {
	Kind logic.Kind
	A, B Expr
}

// Add is a ripple-carry addition (result truncated to the operand width).
type Add struct{ A, B Expr }

// Inc adds one (truncated).
type Inc struct{ A Expr }

// Mux selects B when Sel is 1, A when Sel is 0. Sel must be 1 bit wide.
type Mux struct {
	Sel  Expr
	A, B Expr
}

// Concat concatenates parts; Parts[0] supplies the least-significant bits.
type Concat struct{ Parts []Expr }

// EqConst compares a word against a constant, producing a single bit.
type EqConst struct {
	A Expr
	K uint64
}

// RedOr is the OR-reduction of a word to a single bit.
type RedOr struct{ A Expr }

func (Ref) exprNode()     {}
func (Const) exprNode()   {}
func (Not) exprNode()     {}
func (Bin) exprNode()     {}
func (Add) exprNode()     {}
func (Inc) exprNode()     {}
func (Mux) exprNode()     {}
func (Concat) exprNode()  {}
func (EqConst) exprNode() {}
func (RedOr) exprNode()   {}

// BitExpr is a bit-level expression describing exact gate structure.
type BitExpr interface {
	bitNode()
}

// BRef reads bit Bit of the named signal. For 1-bit signals Bit must be 0.
type BRef struct {
	Name string
	Bit  int
}

// BConst is a constant bit.
type BConst struct{ V bool }

// BOp applies a combinational gate kind to argument expressions; it maps
// one-to-one onto a gate during synthesis. Kind must be combinational and
// the argument count must satisfy the kind's arity rules (Mux2 takes
// [sel, a, b]; Aoi21/Oai21 take [a, b, c]).
type BOp struct {
	Kind logic.Kind
	Args []BitExpr
}

func (BRef) bitNode()   {}
func (BConst) bitNode() {}
func (BOp) bitNode()    {}

// B is a convenience constructor for BOp trees.
func B(kind logic.Kind, args ...BitExpr) BOp { return BOp{Kind: kind, Args: args} }

// Bit is a convenience constructor for BRef.
func Bit(name string, bit int) BRef { return BRef{Name: name, Bit: bit} }

// validateBitExpr checks arities and signal references.
func validateBitExpr(e BitExpr, widths map[string]int) error {
	switch n := e.(type) {
	case BRef:
		w, ok := widths[n.Name]
		if !ok {
			return fmt.Errorf("rtl: reference to undefined signal %q", n.Name)
		}
		if n.Bit < 0 || n.Bit >= w {
			return fmt.Errorf("rtl: bit %d out of range for %q (width %d)", n.Bit, n.Name, w)
		}
		return nil
	case BConst:
		return nil
	case BOp:
		if !n.Kind.IsCombinational() {
			return fmt.Errorf("rtl: BOp with non-combinational kind %s", n.Kind)
		}
		if !n.Kind.ValidArity(len(n.Args)) {
			return fmt.Errorf("rtl: %s with %d arguments", n.Kind, len(n.Args))
		}
		for _, a := range n.Args {
			if err := validateBitExpr(a, widths); err != nil {
				return err
			}
		}
		return nil
	case nil:
		return fmt.Errorf("rtl: nil bit expression")
	default:
		return fmt.Errorf("rtl: unknown bit expression %T", e)
	}
}

// exprWidth infers the width of a word-level expression.
func exprWidth(e Expr, widths map[string]int) (int, error) {
	switch n := e.(type) {
	case Ref:
		w, ok := widths[n.Name]
		if !ok {
			return 0, fmt.Errorf("rtl: reference to undefined signal %q", n.Name)
		}
		return w, nil
	case Const:
		if len(n.Bits) == 0 {
			return 0, fmt.Errorf("rtl: empty constant")
		}
		return len(n.Bits), nil
	case Not:
		return exprWidth(n.A, widths)
	case Bin:
		switch n.Kind {
		case logic.And, logic.Or, logic.Xor, logic.Nand, logic.Nor, logic.Xnor:
		default:
			return 0, fmt.Errorf("rtl: Bin with kind %s", n.Kind)
		}
		wa, err := exprWidth(n.A, widths)
		if err != nil {
			return 0, err
		}
		wb, err := exprWidth(n.B, widths)
		if err != nil {
			return 0, err
		}
		if wa != wb {
			return 0, fmt.Errorf("rtl: width mismatch in %s: %d vs %d", n.Kind, wa, wb)
		}
		return wa, nil
	case Add:
		wa, err := exprWidth(n.A, widths)
		if err != nil {
			return 0, err
		}
		wb, err := exprWidth(n.B, widths)
		if err != nil {
			return 0, err
		}
		if wa != wb {
			return 0, fmt.Errorf("rtl: width mismatch in Add: %d vs %d", wa, wb)
		}
		return wa, nil
	case Inc:
		return exprWidth(n.A, widths)
	case Mux:
		ws, err := exprWidth(n.Sel, widths)
		if err != nil {
			return 0, err
		}
		if ws != 1 {
			return 0, fmt.Errorf("rtl: Mux select must be 1 bit, got %d", ws)
		}
		wa, err := exprWidth(n.A, widths)
		if err != nil {
			return 0, err
		}
		wb, err := exprWidth(n.B, widths)
		if err != nil {
			return 0, err
		}
		if wa != wb {
			return 0, fmt.Errorf("rtl: width mismatch in Mux: %d vs %d", wa, wb)
		}
		return wa, nil
	case Concat:
		if len(n.Parts) == 0 {
			return 0, fmt.Errorf("rtl: empty Concat")
		}
		total := 0
		for _, p := range n.Parts {
			w, err := exprWidth(p, widths)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	case EqConst:
		if _, err := exprWidth(n.A, widths); err != nil {
			return 0, err
		}
		return 1, nil
	case RedOr:
		if _, err := exprWidth(n.A, widths); err != nil {
			return 0, err
		}
		return 1, nil
	case nil:
		return 0, fmt.Errorf("rtl: nil expression")
	default:
		return 0, fmt.Errorf("rtl: unknown expression %T", e)
	}
}
