package rtl

import "fmt"

// Signal declares a named input port.
type Signal struct {
	Name  string
	Width int
}

// Wire is a named shared combinational signal. Exactly one of Expr (word
// level) or Bits (explicit per-bit structure) must be set; Width is required
// when Bits is used and optional (inferred) with Expr.
type Wire struct {
	Name  string
	Width int
	Expr  Expr
	Bits  []BitExpr
}

// Reg is a register. Exactly one of Next (word level) or NextBits must be
// set. The synthesizer names each flip-flop output net "<Name>_reg[i]",
// preserving register names the way the paper's synthesis setup does.
type Reg struct {
	Name     string
	Width    int
	Next     Expr
	NextBits []BitExpr
}

// Output declares a primary output driven by an expression.
type Output struct {
	Name string
	Expr Expr
}

// Design is a complete RTL description.
type Design struct {
	Name    string
	Inputs  []Signal
	Wires   []Wire
	Regs    []*Reg
	Outputs []Output
}

// Widths returns the signal-name-to-width table covering inputs, wires, and
// register outputs. Duplicate names are reported as an error.
func (d *Design) Widths() (map[string]int, error) {
	w := make(map[string]int)
	add := func(name string, width int, what string) error {
		if name == "" {
			return fmt.Errorf("rtl %s: empty %s name", d.Name, what)
		}
		if width < 1 {
			return fmt.Errorf("rtl %s: %s %q has width %d", d.Name, what, name, width)
		}
		if _, dup := w[name]; dup {
			return fmt.Errorf("rtl %s: duplicate signal name %q", d.Name, name)
		}
		w[name] = width
		return nil
	}
	for _, in := range d.Inputs {
		if err := add(in.Name, in.Width, "input"); err != nil {
			return nil, err
		}
	}
	for i := range d.Wires {
		wire := &d.Wires[i]
		width := wire.Width
		if width == 0 && len(wire.Bits) > 0 {
			width = len(wire.Bits)
		}
		if err := add(wire.Name, max(width, 1), "wire"); err != nil {
			return nil, err
		}
	}
	for _, r := range d.Regs {
		if err := add(r.Name, r.Width, "register"); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Validate checks that every expression is well formed and width-consistent.
// Wires may reference wires declared earlier in the list (and inputs and
// registers anywhere); cycles among wires are rejected by that ordering
// rule.
func (d *Design) Validate() error {
	widths, err := d.Widths()
	if err != nil {
		return err
	}
	// Wire expressions may only use inputs, registers, and earlier wires.
	visible := make(map[string]int)
	for _, in := range d.Inputs {
		visible[in.Name] = widths[in.Name]
	}
	for _, r := range d.Regs {
		visible[r.Name] = widths[r.Name]
	}
	for i := range d.Wires {
		wire := &d.Wires[i]
		switch {
		case wire.Expr != nil && wire.Bits != nil:
			return fmt.Errorf("rtl %s: wire %q has both Expr and Bits", d.Name, wire.Name)
		case wire.Expr != nil:
			w, err := exprWidth(wire.Expr, visible)
			if err != nil {
				return fmt.Errorf("rtl %s: wire %q: %w", d.Name, wire.Name, err)
			}
			if wire.Width != 0 && wire.Width != w {
				return fmt.Errorf("rtl %s: wire %q declared width %d but expression is %d bits", d.Name, wire.Name, wire.Width, w)
			}
		case wire.Bits != nil:
			for bi, be := range wire.Bits {
				if err := validateBitExpr(be, visible); err != nil {
					return fmt.Errorf("rtl %s: wire %q bit %d: %w", d.Name, wire.Name, bi, err)
				}
			}
		default:
			return fmt.Errorf("rtl %s: wire %q has neither Expr nor Bits", d.Name, wire.Name)
		}
		visible[wire.Name] = widths[wire.Name]
	}
	for _, r := range d.Regs {
		switch {
		case r.Next != nil && r.NextBits != nil:
			return fmt.Errorf("rtl %s: register %q has both Next and NextBits", d.Name, r.Name)
		case r.Next != nil:
			w, err := exprWidth(r.Next, visible)
			if err != nil {
				return fmt.Errorf("rtl %s: register %q: %w", d.Name, r.Name, err)
			}
			if w != r.Width {
				return fmt.Errorf("rtl %s: register %q is %d bits but next-state is %d bits", d.Name, r.Name, r.Width, w)
			}
		case r.NextBits != nil:
			if len(r.NextBits) != r.Width {
				return fmt.Errorf("rtl %s: register %q is %d bits but has %d next-state bits", d.Name, r.Name, r.Width, len(r.NextBits))
			}
			for bi, be := range r.NextBits {
				if err := validateBitExpr(be, visible); err != nil {
					return fmt.Errorf("rtl %s: register %q bit %d: %w", d.Name, r.Name, bi, err)
				}
			}
		default:
			return fmt.Errorf("rtl %s: register %q has no next-state", d.Name, r.Name)
		}
	}
	for _, o := range d.Outputs {
		if o.Name == "" {
			return fmt.Errorf("rtl %s: output with empty name", d.Name)
		}
		if _, err := exprWidth(o.Expr, visible); err != nil {
			return fmt.Errorf("rtl %s: output %q: %w", d.Name, o.Name, err)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
