package rtl

import (
	"fmt"

	"gatewords/internal/logic"
)

// Env holds bit values for named signals during reference evaluation: each
// signal maps to a slice of per-bit values (index 0 = LSB).
type Env map[string][]logic.Value

// Clone returns a deep copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = append([]logic.Value(nil), v...)
	}
	return out
}

// EvalStep computes one clock cycle of the design under the reference
// semantics: env must contain values for every input and every register
// (the current state). It returns the wire values, the next register
// values, and the output values. This evaluator is the specification the
// synthesized netlist is tested against.
func (d *Design) EvalStep(env Env) (wires Env, nextRegs Env, outs Env, err error) {
	scope := env.Clone()
	wires = make(Env)
	for i := range d.Wires {
		w := &d.Wires[i]
		var vals []logic.Value
		if w.Expr != nil {
			vals, err = evalExpr(w.Expr, scope)
		} else {
			vals = make([]logic.Value, len(w.Bits))
			for bi, be := range w.Bits {
				vals[bi], err = evalBit(be, scope)
				if err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("rtl %s: wire %q: %w", d.Name, w.Name, err)
		}
		scope[w.Name] = vals
		wires[w.Name] = vals
	}
	nextRegs = make(Env)
	for _, r := range d.Regs {
		var vals []logic.Value
		if r.Next != nil {
			vals, err = evalExpr(r.Next, scope)
		} else {
			vals = make([]logic.Value, len(r.NextBits))
			for bi, be := range r.NextBits {
				vals[bi], err = evalBit(be, scope)
				if err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("rtl %s: register %q: %w", d.Name, r.Name, err)
		}
		nextRegs[r.Name] = vals
	}
	outs = make(Env)
	for _, o := range d.Outputs {
		vals, err := evalExpr(o.Expr, scope)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("rtl %s: output %q: %w", d.Name, o.Name, err)
		}
		outs[o.Name] = vals
	}
	return wires, nextRegs, outs, nil
}

func evalBit(e BitExpr, scope Env) (logic.Value, error) {
	switch n := e.(type) {
	case BRef:
		vals, ok := scope[n.Name]
		if !ok {
			return logic.X, fmt.Errorf("undefined signal %q", n.Name)
		}
		if n.Bit < 0 || n.Bit >= len(vals) {
			return logic.X, fmt.Errorf("bit %d out of range for %q", n.Bit, n.Name)
		}
		return vals[n.Bit], nil
	case BConst:
		return logic.FromBool(n.V), nil
	case BOp:
		args := make([]logic.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := evalBit(a, scope)
			if err != nil {
				return logic.X, err
			}
			args[i] = v
		}
		return logic.Eval(n.Kind, args), nil
	default:
		return logic.X, fmt.Errorf("unknown bit expression %T", e)
	}
}

func evalExpr(e Expr, scope Env) ([]logic.Value, error) {
	switch n := e.(type) {
	case Ref:
		vals, ok := scope[n.Name]
		if !ok {
			return nil, fmt.Errorf("undefined signal %q", n.Name)
		}
		return append([]logic.Value(nil), vals...), nil
	case Const:
		out := make([]logic.Value, len(n.Bits))
		for i, b := range n.Bits {
			out[i] = logic.FromBool(b)
		}
		return out, nil
	case Not:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		for i := range a {
			a[i] = a[i].Not()
		}
		return a, nil
	case Bin:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		b, err := evalExpr(n.B, scope)
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("width mismatch in %s", n.Kind)
		}
		out := make([]logic.Value, len(a))
		for i := range a {
			out[i] = logic.Eval(n.Kind, []logic.Value{a[i], b[i]})
		}
		return out, nil
	case Add:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		b, err := evalExpr(n.B, scope)
		if err != nil {
			return nil, err
		}
		return rippleAdd(a, b, logic.Zero), nil
	case Inc:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		b := make([]logic.Value, len(a))
		for i := range b {
			b[i] = logic.Zero
		}
		return rippleAdd(a, b, logic.One), nil
	case Mux:
		sel, err := evalExpr(n.Sel, scope)
		if err != nil {
			return nil, err
		}
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		b, err := evalExpr(n.B, scope)
		if err != nil {
			return nil, err
		}
		out := make([]logic.Value, len(a))
		for i := range a {
			out[i] = logic.Eval(logic.Mux2, []logic.Value{sel[0], a[i], b[i]})
		}
		return out, nil
	case Concat:
		var out []logic.Value
		for _, p := range n.Parts {
			vals, err := evalExpr(p, scope)
			if err != nil {
				return nil, err
			}
			out = append(out, vals...)
		}
		return out, nil
	case EqConst:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		acc := logic.One
		for i, v := range a {
			want := logic.FromBool(n.K>>uint(i)&1 == 1)
			bitEq := logic.Eval(logic.Xnor, []logic.Value{v, want})
			acc = logic.Eval(logic.And, []logic.Value{acc, bitEq})
		}
		return []logic.Value{acc}, nil
	case RedOr:
		a, err := evalExpr(n.A, scope)
		if err != nil {
			return nil, err
		}
		if len(a) == 1 {
			return a, nil
		}
		return []logic.Value{logic.Eval(logic.Or, a)}, nil
	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

func rippleAdd(a, b []logic.Value, carry logic.Value) []logic.Value {
	out := make([]logic.Value, len(a))
	for i := range a {
		axb := logic.Eval(logic.Xor, []logic.Value{a[i], b[i]})
		out[i] = logic.Eval(logic.Xor, []logic.Value{axb, carry})
		ab := logic.Eval(logic.And, []logic.Value{a[i], b[i]})
		ac := logic.Eval(logic.And, []logic.Value{axb, carry})
		carry = logic.Eval(logic.Or, []logic.Value{ab, ac})
	}
	return out
}
