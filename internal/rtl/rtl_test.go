package rtl

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

func vals(bits ...int) []logic.Value {
	out := make([]logic.Value, len(bits))
	for i, b := range bits {
		switch b {
		case 0:
			out[i] = logic.Zero
		case 1:
			out[i] = logic.One
		default:
			out[i] = logic.X
		}
	}
	return out
}

func toUint(t *testing.T, v []logic.Value) uint64 {
	t.Helper()
	var out uint64
	for i, b := range v {
		switch b {
		case logic.One:
			out |= 1 << uint(i)
		case logic.X:
			t.Fatalf("unexpected X at bit %d", i)
		}
	}
	return out
}

func TestConstUint(t *testing.T) {
	c := ConstUint(0b1011, 4)
	want := []bool{true, true, false, true}
	for i, b := range want {
		if c.Bits[i] != b {
			t.Fatalf("ConstUint bits = %v", c.Bits)
		}
	}
}

func TestValidateGood(t *testing.T) {
	d := &Design{
		Name:   "ok",
		Inputs: []Signal{{Name: "a", Width: 4}, {Name: "en", Width: 1}},
		Wires: []Wire{
			{Name: "na", Width: 4, Expr: Not{A: Ref{Name: "a"}}},
			{Name: "lo", Width: 1, Bits: []BitExpr{B(logic.And, Bit("en", 0), Bit("na", 0))}},
		},
		Regs: []*Reg{
			{Name: "r", Width: 4, Next: Mux{Sel: Ref{Name: "en"}, A: Ref{Name: "r"}, B: Ref{Name: "na"}}},
			{Name: "c", Width: 3, Next: Inc{A: Ref{Name: "c"}}},
		},
		Outputs: []Output{{Name: "o", Expr: RedOr{A: Ref{Name: "r"}}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		d    *Design
		frag string
	}{
		{
			"dup name",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 1}, {Name: "a", Width: 2}}},
			"duplicate",
		},
		{
			"width mismatch",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 2}, {Name: "b", Width: 3}},
				Regs: []*Reg{{Name: "r", Width: 2, Next: Bin{Kind: logic.And, A: Ref{Name: "a"}, B: Ref{Name: "b"}}}}},
			"width mismatch",
		},
		{
			"bad mux select",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 2}},
				Regs: []*Reg{{Name: "r", Width: 2, Next: Mux{Sel: Ref{Name: "a"}, A: Ref{Name: "a"}, B: Ref{Name: "a"}}}}},
			"select must be 1 bit",
		},
		{
			"reg width mismatch",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 3}},
				Regs: []*Reg{{Name: "r", Width: 2, Next: Ref{Name: "a"}}}},
			"next-state is 3 bits",
		},
		{
			"undefined ref",
			&Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1, Next: Ref{Name: "ghost"}}}},
			"undefined signal",
		},
		{
			"no next",
			&Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1}}},
			"no next-state",
		},
		{
			"both next forms",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 1}},
				Regs: []*Reg{{Name: "r", Width: 1, Next: Ref{Name: "a"}, NextBits: []BitExpr{Bit("a", 0)}}}},
			"both Next and NextBits",
		},
		{
			"bit out of range",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 2}},
				Regs: []*Reg{{Name: "r", Width: 1, NextBits: []BitExpr{Bit("a", 5)}}}},
			"out of range",
		},
		{
			"wire uses later wire",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 1}},
				Wires: []Wire{
					{Name: "w1", Width: 1, Expr: Ref{Name: "w2"}},
					{Name: "w2", Width: 1, Expr: Ref{Name: "a"}},
				}},
			"undefined signal",
		},
		{
			"bad bop arity",
			&Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 1}},
				Regs: []*Reg{{Name: "r", Width: 1, NextBits: []BitExpr{B(logic.Mux2, Bit("a", 0))}}}},
			"MUX2 with 1",
		},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.frag)
		}
	}
}

func TestEvalStepAdder(t *testing.T) {
	d := &Design{
		Name:   "add",
		Inputs: []Signal{{Name: "a", Width: 4}, {Name: "b", Width: 4}},
		Regs:   []*Reg{{Name: "s", Width: 4, Next: Add{A: Ref{Name: "a"}, B: Ref{Name: "b"}}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			env := Env{
				"a": constVals(a, 4),
				"b": constVals(b, 4),
				"s": vals(0, 0, 0, 0),
			}
			_, next, _, err := d.EvalStep(env)
			if err != nil {
				t.Fatal(err)
			}
			if got := toUint(t, next["s"]); got != (a+b)%16 {
				t.Fatalf("%d+%d = %d, want %d", a, b, got, (a+b)%16)
			}
		}
	}
}

func constVals(v uint64, w int) []logic.Value {
	out := make([]logic.Value, w)
	for i := range out {
		out[i] = logic.FromBool(v>>uint(i)&1 == 1)
	}
	return out
}

func TestEvalStepIncMuxConcat(t *testing.T) {
	d := &Design{
		Name:   "m",
		Inputs: []Signal{{Name: "en", Width: 1}, {Name: "a", Width: 2}, {Name: "b", Width: 2}},
		Regs: []*Reg{
			{Name: "c", Width: 4, Next: Inc{A: Ref{Name: "c"}}},
			{Name: "r", Width: 4, Next: Mux{
				Sel: Ref{Name: "en"},
				A:   Ref{Name: "r"},
				B:   Concat{Parts: []Expr{Ref{Name: "a"}, Ref{Name: "b"}}},
			}},
		},
		Outputs: []Output{
			{Name: "isSeven", Expr: EqConst{A: Ref{Name: "c"}, K: 7}},
			{Name: "any", Expr: RedOr{A: Ref{Name: "r"}}},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	env := Env{
		"en": constVals(1, 1),
		"a":  constVals(0b10, 2),
		"b":  constVals(0b01, 2),
		"c":  constVals(7, 4),
		"r":  constVals(0, 4),
	}
	_, next, outs, err := d.EvalStep(env)
	if err != nil {
		t.Fatal(err)
	}
	if got := toUint(t, next["c"]); got != 8 {
		t.Errorf("inc: %d", got)
	}
	// Concat: a is the low part -> r = b<<2 | a = 0b0110.
	if got := toUint(t, next["r"]); got != 0b0110 {
		t.Errorf("mux/concat: %04b", got)
	}
	if outs["isSeven"][0] != logic.One {
		t.Errorf("EqConst: %s", outs["isSeven"][0])
	}
	if outs["any"][0] != logic.Zero {
		t.Errorf("RedOr of zero word: %s", outs["any"][0])
	}
}

func TestEvalStepWireChain(t *testing.T) {
	d := &Design{
		Name:   "w",
		Inputs: []Signal{{Name: "a", Width: 1}},
		Wires: []Wire{
			{Name: "w1", Width: 1, Expr: Not{A: Ref{Name: "a"}}},
			{Name: "w2", Width: 1, Expr: Not{A: Ref{Name: "w1"}}},
		},
		Regs: []*Reg{{Name: "r", Width: 1, Next: Ref{Name: "w2"}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	env := Env{"a": vals(1), "r": vals(0)}
	wires, next, _, err := d.EvalStep(env)
	if err != nil {
		t.Fatal(err)
	}
	if wires["w1"][0] != logic.Zero || wires["w2"][0] != logic.One {
		t.Errorf("wires: %v", wires)
	}
	if next["r"][0] != logic.One {
		t.Errorf("reg: %v", next["r"])
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"a": vals(1, 0)}
	c := e.Clone()
	c["a"][0] = logic.Zero
	if e["a"][0] != logic.One {
		t.Error("Clone shares storage")
	}
}
