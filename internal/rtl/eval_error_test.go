package rtl

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

// evalDesign wraps EvalStep for error-path tests.
func evalErr(t *testing.T, d *Design, env Env) error {
	t.Helper()
	_, _, _, err := d.EvalStep(env)
	return err
}

func TestEvalStepErrors(t *testing.T) {
	cases := []struct {
		name string
		d    *Design
		env  Env
		frag string
	}{
		{
			"wire undefined ref",
			&Design{Name: "d", Wires: []Wire{{Name: "w", Width: 1, Expr: Ref{Name: "ghost"}}}},
			Env{},
			"undefined signal",
		},
		{
			"wire bad bit ref",
			&Design{Name: "d",
				Inputs: []Signal{{Name: "a", Width: 2}},
				Wires:  []Wire{{Name: "w", Width: 1, Bits: []BitExpr{Bit("a", 7)}}}},
			Env{"a": vals(0, 1)},
			"out of range",
		},
		{
			"reg undefined",
			&Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1, Next: Ref{Name: "nope"}}}},
			Env{"r": vals(0)},
			"undefined signal",
		},
		{
			"output undefined",
			&Design{Name: "d", Outputs: []Output{{Name: "o", Expr: Ref{Name: "nope"}}}},
			Env{},
			"undefined signal",
		},
		{
			"bin width mismatch at eval",
			&Design{Name: "d",
				Inputs: []Signal{{Name: "a", Width: 2}, {Name: "b", Width: 3}},
				Outputs: []Output{{Name: "o",
					Expr: Bin{Kind: logic.And, A: Ref{Name: "a"}, B: Ref{Name: "b"}}}}},
			Env{"a": vals(0, 1), "b": vals(1, 1, 0)},
			"width mismatch",
		},
	}
	for _, c := range cases {
		err := evalErr(t, c.d, c.env)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: %q missing %q", c.name, err, c.frag)
		}
	}
}

func TestEvalBitOps(t *testing.T) {
	d := &Design{
		Name:   "ops",
		Inputs: []Signal{{Name: "a", Width: 1}, {Name: "b", Width: 1}, {Name: "c", Width: 1}},
		Wires: []Wire{
			{Name: "w1", Width: 1, Bits: []BitExpr{B(logic.Aoi21, Bit("a", 0), Bit("b", 0), Bit("c", 0))}},
			{Name: "w2", Width: 1, Bits: []BitExpr{B(logic.Oai21, Bit("a", 0), Bit("b", 0), Bit("c", 0))}},
			{Name: "w3", Width: 1, Bits: []BitExpr{B(logic.Mux2, Bit("c", 0), Bit("a", 0), Bit("b", 0))}},
			{Name: "w4", Width: 1, Bits: []BitExpr{BConst{V: true}}},
		},
		Regs: []*Reg{{Name: "r", Width: 1, Next: Ref{Name: "w4"}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	wires, _, _, err := d.EvalStep(Env{"a": vals(1), "b": vals(1), "c": vals(0), "r": vals(0)})
	if err != nil {
		t.Fatal(err)
	}
	if wires["w1"][0] != logic.Zero { // !((1&1)|0) = 0
		t.Errorf("aoi21 = %s", wires["w1"][0])
	}
	if wires["w2"][0] != logic.One { // !((1|1)&0) = 1
		t.Errorf("oai21 = %s", wires["w2"][0])
	}
	if wires["w3"][0] != logic.One { // c=0 selects a=1
		t.Errorf("mux2 = %s", wires["w3"][0])
	}
	if wires["w4"][0] != logic.One {
		t.Errorf("const = %s", wires["w4"][0])
	}
}

func TestEvalExprNotXorXnor(t *testing.T) {
	d := &Design{
		Name:   "x",
		Inputs: []Signal{{Name: "a", Width: 2}, {Name: "b", Width: 2}},
		Outputs: []Output{
			{Name: "nx", Expr: Bin{Kind: logic.Xnor, A: Ref{Name: "a"}, B: Ref{Name: "b"}}},
			{Name: "nn", Expr: Bin{Kind: logic.Nand, A: Ref{Name: "a"}, B: Ref{Name: "b"}}},
			{Name: "nr", Expr: Bin{Kind: logic.Nor, A: Ref{Name: "a"}, B: Ref{Name: "b"}}},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, outs, err := d.EvalStep(Env{"a": vals(1, 0), "b": vals(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if outs["nx"][0] != logic.One || outs["nx"][1] != logic.Zero {
		t.Errorf("xnor: %v", outs["nx"])
	}
	if outs["nn"][0] != logic.Zero || outs["nn"][1] != logic.One {
		t.Errorf("nand: %v", outs["nn"])
	}
	if outs["nr"][0] != logic.Zero || outs["nr"][1] != logic.Zero {
		t.Errorf("nor: %v", outs["nr"])
	}
}

func TestEvalEqConstMismatchBits(t *testing.T) {
	d := &Design{
		Name:    "e",
		Inputs:  []Signal{{Name: "a", Width: 3}},
		Outputs: []Output{{Name: "o", Expr: EqConst{A: Ref{Name: "a"}, K: 5}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 8; v++ {
		_, _, outs, err := d.EvalStep(Env{"a": constVals(v, 3)})
		if err != nil {
			t.Fatal(err)
		}
		want := logic.FromBool(v == 5)
		if outs["o"][0] != want {
			t.Errorf("EqConst(%d==5) = %s", v, outs["o"][0])
		}
	}
}

func TestWidthsErrors(t *testing.T) {
	d := &Design{Name: "d", Inputs: []Signal{{Name: "", Width: 1}}}
	if _, err := d.Widths(); err == nil {
		t.Error("empty input name accepted")
	}
	d = &Design{Name: "d", Inputs: []Signal{{Name: "a", Width: 0}}}
	if _, err := d.Widths(); err == nil {
		t.Error("zero width accepted")
	}
	d = &Design{Name: "d", Regs: []*Reg{{Name: "r", Width: -1}}}
	if _, err := d.Widths(); err == nil {
		t.Error("negative width accepted")
	}
}

func TestValidateWireDeclaredWidthMismatch(t *testing.T) {
	d := &Design{
		Name:   "d",
		Inputs: []Signal{{Name: "a", Width: 2}},
		Wires:  []Wire{{Name: "w", Width: 3, Expr: Ref{Name: "a"}}},
	}
	if err := d.Validate(); err == nil {
		t.Error("wire width mismatch accepted")
	}
}

func TestValidateEmptyConcatAndConst(t *testing.T) {
	d := &Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1, Next: Concat{}}}}
	if err := d.Validate(); err == nil {
		t.Error("empty concat accepted")
	}
	d = &Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1, Next: Const{}}}}
	if err := d.Validate(); err == nil {
		t.Error("empty const accepted")
	}
	d = &Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1, Next: nil, NextBits: nil}}}
	if err := d.Validate(); err == nil {
		t.Error("nil next accepted")
	}
	d = &Design{Name: "d", Regs: []*Reg{{Name: "r", Width: 1,
		Next: Bin{Kind: logic.Buf, A: Const{Bits: []bool{true}}, B: Const{Bits: []bool{true}}}}}}
	if err := d.Validate(); err == nil {
		t.Error("Bin with BUF kind accepted")
	}
}
