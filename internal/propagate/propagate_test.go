package propagate

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// datapath synthesizes: r = sel ? (a ^ b) : r, observing that backward
// propagation from the register's D word should recover the XOR word and
// then the a/b primary-input buses.
func datapath(t *testing.T) (*netlist.Netlist, []netlist.NetID) {
	t.Helper()
	d := &rtl.Design{
		Name: "dp",
		Inputs: []rtl.Signal{
			{Name: "a", Width: 4}, {Name: "b", Width: 4}, {Name: "sel", Width: 1},
		},
		Regs: []*rtl.Reg{
			{Name: "r", Width: 4, Next: rtl.Mux{
				Sel: rtl.Ref{Name: "sel"},
				A:   rtl.Ref{Name: "r"},
				B:   rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}},
			}},
		},
		Outputs: []rtl.Output{{Name: "o", Expr: rtl.RedOr{A: rtl.Ref{Name: "r"}}}},
	}
	res, err := synth.Synthesize(d, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.NL, res.RegRoots["r"]
}

func hasWord(t *testing.T, nl *netlist.Netlist, res *Result, names []string) bool {
	t.Helper()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, w := range res.Words {
		if len(w.Bits) != len(names) {
			continue
		}
		all := true
		for _, b := range w.Bits {
			if !want[nl.NetName(b)] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func TestBackwardRecoversOperandBuses(t *testing.T) {
	nl, seed := datapath(t)
	res := Expand(nl, [][]netlist.NetID{seed}, Options{})
	if !hasWord(t, nl, res, []string{"a[0]", "a[1]", "a[2]", "a[3]"}) {
		t.Errorf("input bus a not recovered; words: %d", len(res.Words))
	}
	if !hasWord(t, nl, res, []string{"b[0]", "b[1]", "b[2]", "b[3]"}) {
		t.Errorf("input bus b not recovered")
	}
	if !hasWord(t, nl, res, []string{"r_reg[0]", "r_reg[1]", "r_reg[2]", "r_reg[3]"}) {
		t.Errorf("register output word not recovered (backward through the mux A pin)")
	}
	// Provenance: derived words must reference a valid parent.
	for _, w := range res.Derived() {
		if w.From < 0 || w.From >= len(res.Words) {
			t.Errorf("bad provenance: %+v", w)
		}
		if w.Round < 1 {
			t.Errorf("derived word with round %d", w.Round)
		}
	}
}

func TestForwardThroughGateColumn(t *testing.T) {
	// word -> column of NOT gates -> derived word of the outputs.
	nl := netlist.New("t")
	var seed, outs []netlist.NetID
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		seed = append(seed, a)
	}
	for i, a := range seed {
		o := nl.MustNet("o" + string(rune('0'+i)))
		nl.MustGate("g"+string(rune('0'+i)), logic.Not, o, a)
		outs = append(outs, o)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Expand(nl, [][]netlist.NetID{seed}, Options{})
	if !hasWord(t, nl, res, []string{"o0", "o1", "o2"}) {
		t.Errorf("forward column not derived: %+v", res.Words)
	}
	forward := false
	for _, w := range res.Derived() {
		if w.Dir == Forward {
			forward = true
		}
	}
	if !forward {
		t.Error("no forward-derived word")
	}
}

func TestBackwardSkipsSharedSelect(t *testing.T) {
	// Bits driven by NAND(a_i, sel): pin 0 gives the a word; pin 1 is the
	// shared select and must not become a "word".
	nl := netlist.New("t")
	sel := nl.MustNet("sel")
	nl.MarkPI(sel)
	var seed []netlist.NetID
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		y := nl.MustNet("y" + sfx)
		nl.MustGate("g"+sfx, logic.Nand, y, a, sel)
		seed = append(seed, y)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Expand(nl, [][]netlist.NetID{seed}, Options{})
	if !hasWord(t, nl, res, []string{"a0", "a1", "a2"}) {
		t.Error("operand word not derived")
	}
	for _, w := range res.Derived() {
		for _, b := range w.Bits {
			if nl.NetName(b) == "sel" {
				t.Error("shared select leaked into a derived word")
			}
		}
	}
}

func TestMixedDriverKindsStopBackward(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.Not, x, a)
	nl.MustGate("g2", logic.Buf, y, b)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Expand(nl, [][]netlist.NetID{{x, y}}, Options{})
	if len(res.Derived()) != 0 {
		t.Errorf("mixed driver kinds must not derive words: %+v", res.Derived())
	}
}

func TestDedupAndRounds(t *testing.T) {
	nl, seed := datapath(t)
	res := Expand(nl, [][]netlist.NetID{seed, seed}, Options{})
	// Duplicate seeds collapse.
	n := 0
	for _, w := range res.Words {
		if w.Dir == Seed {
			n++
		}
	}
	if n != 1 {
		t.Errorf("duplicate seed not collapsed: %d", n)
	}
	limited := Expand(nl, [][]netlist.NetID{seed}, Options{MaxRounds: 1})
	if len(limited.Words) > len(res.Words) {
		t.Error("round limit increased words")
	}
	if limited.Rounds != 1 {
		t.Errorf("rounds = %d", limited.Rounds)
	}
}

func TestMaxWordsGuard(t *testing.T) {
	nl, seed := datapath(t)
	res := Expand(nl, [][]netlist.NetID{seed}, Options{MaxWords: 2})
	if len(res.Words) > 3 { // may exceed by the last batch, but barely
		t.Errorf("MaxWords ignored: %d words", len(res.Words))
	}
}

func TestDirectionString(t *testing.T) {
	if Seed.String() != "seed" || Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("direction strings")
	}
}
