// Package propagate implements word propagation, the reverse-engineering
// stage the paper's evaluation points at downstream (§3: identified full
// words feed "word propagation in [6]"). Starting from seed words, it walks
// the netlist in word-parallel fashion:
//
//   - forward: if every bit of a word feeds the same pin position of a
//     column of same-type gates, the column's outputs form a derived word
//     (a register word propagates to the mux column ahead of it, an operand
//     word to the operator's result, ...);
//   - backward: if every bit of a word is driven by a column of same-type
//     gates, each input pin position of that column yields a derived word
//     (a result word recovers its operand words, including primary-input
//     buses).
//
// Propagation iterates to a fixpoint (bounded by MaxRounds), deduplicating
// words by bit-set. It is deliberately structural and cheap; its value is
// breadth — words reachable from verified seeds — rather than certainty, so
// derived words carry their provenance.
package propagate

import (
	"sort"
	"strconv"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Direction tags how a derived word was obtained.
type Direction uint8

// Provenance directions.
const (
	Seed Direction = iota
	Forward
	Backward
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Seed:
		return "seed"
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	}
	return "?"
}

// Word is a (possibly derived) word with provenance.
type Word struct {
	Bits []netlist.NetID
	Dir  Direction
	// From indexes the word this one was derived from (-1 for seeds).
	From int
	// Round is the propagation round that produced it (0 for seeds).
	Round int
}

// Options bounds propagation.
type Options struct {
	// MaxRounds caps fixpoint iterations (default 4).
	MaxRounds int
	// MinBits ignores seed and derived words narrower than this
	// (default 2).
	MinBits int
	// MaxWords aborts runaway growth (default 4096).
	MaxWords int
}

func (o Options) withDefaults() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4
	}
	if o.MinBits < 2 {
		o.MinBits = 2
	}
	if o.MaxWords <= 0 {
		o.MaxWords = 4096
	}
	return o
}

// Result is the propagation output: seeds first, then derived words in
// discovery order.
type Result struct {
	Words  []Word
	Rounds int
}

// Derived returns only the non-seed words.
func (r *Result) Derived() []Word {
	var out []Word
	for _, w := range r.Words {
		if w.Dir != Seed {
			out = append(out, w)
		}
	}
	return out
}

// Expand propagates the seed words through nl.
func Expand(nl *netlist.Netlist, seeds [][]netlist.NetID, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	seen := map[string]bool{}
	for _, s := range seeds {
		if len(s) < opt.MinBits {
			continue
		}
		key := wordKey(s)
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Words = append(res.Words, Word{Bits: append([]netlist.NetID(nil), s...), Dir: Seed, From: -1})
	}

	frontier := make([]int, len(res.Words))
	for i := range frontier {
		frontier[i] = i
	}
	for round := 1; round <= opt.MaxRounds && len(frontier) > 0; round++ {
		res.Rounds = round
		var next []int
		for _, wi := range frontier {
			for _, cand := range deriveForward(nl, res.Words[wi].Bits) {
				next = addWord(res, seen, cand, Forward, wi, round, opt, next)
			}
			for _, cand := range deriveBackward(nl, res.Words[wi].Bits) {
				next = addWord(res, seen, cand, Backward, wi, round, opt, next)
			}
			if len(res.Words) >= opt.MaxWords {
				return res
			}
		}
		frontier = next
	}
	return res
}

func addWord(res *Result, seen map[string]bool, bits []netlist.NetID, dir Direction, from, round int, opt Options, next []int) []int {
	if len(bits) < opt.MinBits {
		return next
	}
	key := wordKey(bits)
	if seen[key] {
		return next
	}
	seen[key] = true
	res.Words = append(res.Words, Word{Bits: bits, Dir: dir, From: from, Round: round})
	return append(next, len(res.Words)-1)
}

// wordKey canonicalizes a bit set.
func wordKey(bits []netlist.NetID) string {
	ids := append([]netlist.NetID(nil), bits...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(int(id)))
		sb.WriteByte(',')
	}
	return sb.String()
}

// columnKey identifies a gate column candidate: same kind, same arity, and
// the word bit arriving on the same pin position.
type columnKey struct {
	kind  logic.Kind
	arity int
	pin   int
}

// deriveForward finds gate columns fed by the word: for each (kind, arity,
// pin) combination that covers every bit with distinct gates, the column
// outputs form a derived word.
func deriveForward(nl *netlist.Netlist, bits []netlist.NetID) [][]netlist.NetID {
	perBit := make([]map[columnKey][]netlist.GateID, len(bits))
	keys := map[columnKey]bool{}
	for i, b := range bits {
		perBit[i] = map[columnKey][]netlist.GateID{}
		for _, g := range nl.Net(b).Fanout {
			gate := nl.Gate(g)
			if !gate.Kind.IsCombinational() {
				continue
			}
			for pin, in := range gate.Inputs {
				if in != b {
					continue
				}
				k := columnKey{kind: gate.Kind, arity: len(gate.Inputs), pin: pin}
				perBit[i][k] = append(perBit[i][k], g)
				keys[k] = true
			}
		}
	}
	var out [][]netlist.NetID
	for k := range keys {
		cols := collectColumn(perBit, k)
		for _, col := range cols {
			word := make([]netlist.NetID, len(col))
			for i, g := range col {
				word[i] = nl.Gate(g).Output
			}
			out = append(out, word)
		}
	}
	sortWords(out)
	return out
}

// collectColumn assembles distinct-gate columns for one key: every bit must
// have at least one candidate gate, and a gate may serve only one bit. The
// greedy assignment takes the first unused candidate per bit; ambiguity
// beyond that (rare in practice) is resolved arbitrarily but
// deterministically.
func collectColumn(perBit []map[columnKey][]netlist.GateID, k columnKey) [][]netlist.GateID {
	used := map[netlist.GateID]bool{}
	col := make([]netlist.GateID, len(perBit))
	for i := range perBit {
		found := false
		for _, g := range perBit[i][k] {
			if !used[g] {
				used[g] = true
				col[i] = g
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return [][]netlist.GateID{col}
}

// deriveBackward inspects the word's driver column: if every bit is driven
// by a gate of one (kind, arity), each input pin position yields a derived
// word, provided its nets are pairwise distinct (shared nets are control
// signals, not word bits).
func deriveBackward(nl *netlist.Netlist, bits []netlist.NetID) [][]netlist.NetID {
	var kind logic.Kind
	arity := -1
	drivers := make([]*netlist.Gate, len(bits))
	for i, b := range bits {
		d := nl.Net(b).Driver
		if d == netlist.NoGate {
			return nil
		}
		g := nl.Gate(d)
		if !g.Kind.IsCombinational() && g.Kind != logic.DFF {
			return nil
		}
		if i == 0 {
			kind = g.Kind
			arity = len(g.Inputs)
		} else if g.Kind != kind || len(g.Inputs) != arity {
			return nil
		}
		drivers[i] = g
	}
	var out [][]netlist.NetID
	for pin := 0; pin < arity; pin++ {
		word := make([]netlist.NetID, len(bits))
		distinct := map[netlist.NetID]bool{}
		ok := true
		for i, g := range drivers {
			in := g.Inputs[pin]
			if distinct[in] {
				ok = false // a shared net across bits: a select, not a bit
				break
			}
			distinct[in] = true
			word[i] = in
		}
		if ok {
			out = append(out, word)
		}
	}
	sortWords(out)
	return out
}

// sortWords orders candidate lists deterministically (by first net ID).
func sortWords(words [][]netlist.NetID) {
	sort.Slice(words, func(i, j int) bool {
		return wordKey(words[i]) < wordKey(words[j])
	})
}
