package propagate

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// TestExpandInvariants fuzzes propagation over random netlists: derived
// words never contain duplicate nets, never exceed the seed width, and the
// result is deterministic.
func TestExpandInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := netlist.New("rnd")
		var nets []netlist.NetID
		for i := 0; i < 5; i++ {
			id := nl.MustNet("pi" + string(rune('0'+i)))
			nl.MarkPI(id)
			nets = append(nets, id)
		}
		kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
		for i := 0; i < 20; i++ {
			k := kinds[rng.Intn(len(kinds))]
			n := 2
			if k == logic.Not {
				n = 1
			}
			ins := make([]netlist.NetID, n)
			for j := range ins {
				ins[j] = nets[rng.Intn(len(nets))]
			}
			out := nl.MustNet("n" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
			nl.MustGate("g"+string(rune('a'+i%26))+string(rune('0'+i/26)), k, out, ins...)
			nets = append(nets, out)
		}
		if err := nl.Validate(); err != nil {
			t.Fatal(err)
		}
		// Seed: a random trio of distinct nets.
		perm := rng.Perm(len(nets))
		seedWord := []netlist.NetID{nets[perm[0]], nets[perm[1]], nets[perm[2]]}
		res1 := Expand(nl, [][]netlist.NetID{seedWord}, Options{})
		res2 := Expand(nl, [][]netlist.NetID{seedWord}, Options{})
		if len(res1.Words) != len(res2.Words) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
		for wi, w := range res1.Words {
			if len(w.Bits) != len(seedWord) {
				t.Fatalf("seed %d: derived word width %d != %d", seed, len(w.Bits), len(seedWord))
			}
			dup := map[netlist.NetID]bool{}
			for _, b := range w.Bits {
				if dup[b] {
					t.Fatalf("seed %d: duplicate net in derived word", seed)
				}
				dup[b] = true
			}
			if len(res2.Words[wi].Bits) != len(w.Bits) {
				t.Fatalf("seed %d: nondeterministic word %d", seed, wi)
			}
			for bi := range w.Bits {
				if res2.Words[wi].Bits[bi] != w.Bits[bi] {
					t.Fatalf("seed %d: nondeterministic bits", seed)
				}
			}
		}
	}
}
