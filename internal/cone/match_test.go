package cone

import (
	"math/rand"
	"sort"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// makeBits fabricates BitCones with the given subtree key strings (interned
// as atoms, bypassing netlist construction) so matching logic can be tested
// in isolation. Subtrees are sorted in the interner's key order, as
// Builder.Bit produces them, and the full key is the hash-consed tuple of
// the sorted subtree keys — so equal key multisets yield equal FullKeys.
func makeBits(it *Interner, kind logic.Kind, keyLists ...[]string) []*BitCone {
	var out []*BitCone
	for i, keys := range keyLists {
		bc := &BitCone{Net: netlist.NetID(i), RootKind: kind}
		ids := make([]KeyID, 0, len(keys))
		for _, k := range keys {
			id := it.Intern(k)
			bc.Subtrees = append(bc.Subtrees, Subtree{Root: netlist.NoNet, Key: id})
			ids = append(ids, id)
		}
		sort.Slice(bc.Subtrees, func(a, b int) bool {
			return bc.Subtrees[a].Key < bc.Subtrees[b].Key
		})
		bc.FullKey = it.InternNode(kind, ids)
		out = append(out, bc)
	}
	return out
}

func TestMatchFull(t *testing.T) {
	it := NewInterner()
	bits := makeBits(it, logic.Nand, []string{"x", "y"}, []string{"y", "x"})
	m := Match(bits[0], bits[1])
	if !m.Full() || m.Matched != 2 || m.Partial() {
		t.Errorf("full match misclassified: %+v", m)
	}
	if !FullMatch(bits[0], bits[1]) {
		t.Error("FullMatch false on identical key multisets")
	}
}

func TestMatchPartial(t *testing.T) {
	it := NewInterner()
	bits := makeBits(it, logic.Nand, []string{"x", "y", "z1"}, []string{"x", "y", "z2"})
	m := Match(bits[0], bits[1])
	if !m.Partial() || m.Matched != 2 {
		t.Errorf("partial match misclassified: %+v", m)
	}
	if len(m.DissimA) != 1 || len(m.DissimB) != 1 {
		t.Errorf("dissimilar indices: %+v", m)
	}
	if got := it.String(bits[0].Subtrees[m.DissimA[0]].Key); got != "z1" {
		t.Errorf("dissimilar A = %q", got)
	}
	if !PartialMatch(bits[0], bits[1]) {
		t.Error("PartialMatch false")
	}
}

func TestMatchDisjoint(t *testing.T) {
	it := NewInterner()
	bits := makeBits(it, logic.Nand, []string{"a", "b"}, []string{"c", "d"})
	m := Match(bits[0], bits[1])
	if m.Matched != 0 || m.Full() || m.Partial() {
		t.Errorf("disjoint match misclassified: %+v", m)
	}
	if PartialMatch(bits[0], bits[1]) {
		t.Error("PartialMatch true on disjoint subtrees")
	}
}

func TestMatchMultiset(t *testing.T) {
	// Duplicate keys must match with multiset semantics: {x,x,y} vs {x,y,y}
	// shares one x and one y.
	it := NewInterner()
	bits := makeBits(it, logic.Nand, []string{"x", "x", "y"}, []string{"x", "y", "y"})
	m := Match(bits[0], bits[1])
	if m.Matched != 2 || len(m.DissimA) != 1 || len(m.DissimB) != 1 {
		t.Errorf("multiset match: %+v", m)
	}
}

func TestMatchRootKindGate(t *testing.T) {
	it := NewInterner()
	a := makeBits(it, logic.Nand, []string{"x"})[0]
	b := makeBits(it, logic.Nor, []string{"x"})[0]
	if FullMatch(a, b) {
		t.Error("FullMatch across root kinds")
	}
	if PartialMatch(a, b) {
		t.Error("PartialMatch across root kinds")
	}
}

// naiveIntersect computes the multiset intersection of the bits' key lists
// the slow way, as a reference for CommonKeys.
func naiveIntersect(it *Interner, bits []*BitCone) map[string]int {
	counts := map[string]int{}
	for _, st := range bits[0].Subtrees {
		counts[it.String(st.Key)]++
	}
	for _, b := range bits[1:] {
		cur := map[string]int{}
		for _, st := range b.Subtrees {
			cur[it.String(st.Key)]++
		}
		for k, c := range counts {
			if cur[k] < c {
				counts[k] = cur[k]
			}
			if counts[k] == 0 {
				delete(counts, k)
			}
		}
	}
	return counts
}

func TestCommonKeysAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 200; trial++ {
		it := NewInterner()
		var lists [][]string
		nBits := 2 + rng.Intn(4)
		for i := 0; i < nBits; i++ {
			n := 1 + rng.Intn(5)
			keys := make([]string, n)
			for j := range keys {
				keys[j] = alphabet[rng.Intn(len(alphabet))]
			}
			lists = append(lists, keys)
		}
		bits := makeBits(it, logic.Nand, lists...)
		common := CommonKeys(bits)
		got := map[string]int{}
		for _, k := range common {
			got[it.String(k)]++
		}
		want := naiveIntersect(it, bits)
		if len(got) != len(want) {
			t.Fatalf("trial %d: common %v want %v (lists %v)", trial, got, want, lists)
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("trial %d: common[%s]=%d want %d (lists %v)", trial, k, got[k], c, lists)
			}
		}
		// Dissimilar + common must partition every bit's subtrees.
		for _, b := range bits {
			dis := Dissimilar(b, common)
			if len(dis)+len(common) < len(b.Subtrees) {
				t.Fatalf("trial %d: dissimilar undercount", trial)
			}
			frac := SimilarFraction(b, common)
			wantFrac := float64(len(b.Subtrees)-len(dis)) / float64(len(b.Subtrees))
			if frac != wantFrac {
				t.Fatalf("trial %d: SimilarFraction %f want %f", trial, frac, wantFrac)
			}
		}
	}
}

func TestCommonKeysEmptyInput(t *testing.T) {
	if got := CommonKeys(nil); got != nil {
		t.Errorf("CommonKeys(nil) = %v", got)
	}
}

func TestSimilarFractionEdge(t *testing.T) {
	it := NewInterner()
	bc := &BitCone{RootKind: logic.Nand}
	if SimilarFraction(bc, nil) != 0 {
		t.Error("bit without subtrees must report 0")
	}
	bits := makeBits(it, logic.Nand, []string{"x", "y"})
	common := []KeyID{bits[0].Subtrees[0].Key, bits[0].Subtrees[1].Key}
	if SimilarFraction(bits[0], common) != 1.0 {
		t.Error("fully covered bit must report 1")
	}
}
