package cone

import "gatewords/internal/netlist"

// Overlay computes cones and keys against a modified view of a base
// builder's circuit — typically a constant-propagated reduction — reusing
// the base builder's memoized keys for every subtree the modification
// cannot reach. It is the incremental path of the assignment-trial loop
// (§2.5): per trial, only the nets inside the reduced region are re-keyed
// instead of re-deriving every key under a fresh Builder.
//
// dist gives, for each net within reach of the modification, the minimum
// number of driver (fanin) steps from that net down to a changed net
// (reduce.Reduction.DirtyDistances computes it). The subtree (net, depth)
// renders identically under both views exactly when no changed net lies
// within depth levels of its root — i.e. when dist[net] > depth — because a
// changed net at distance d <= depth alters the expansion: at d < depth it
// changes which gates unfold, and at d == depth it rewrites the effective
// kind and surviving pins of a gate on the expansion frontier. Nets absent
// from dist are out of reach and always delegate to the base memo.
//
// An Overlay interns into the base builder's Interner, so its KeyIDs are
// directly comparable with base keys.
type Overlay struct {
	base   *Builder
	view   netlist.View
	dist   map[netlist.NetID]int
	memo   map[memoKey]KeyID
	inbuf  []netlist.NetID
	idbuf  []KeyID
	frames []keyFrame
}

// Overlay returns an incremental key builder over view. Reset repoints an
// existing Overlay at the next trial's view without reallocating scratch.
func (b *Builder) Overlay(view netlist.View, dist map[netlist.NetID]int) *Overlay {
	return &Overlay{base: b, view: view, dist: dist, memo: make(map[memoKey]KeyID)}
}

// Reset repoints the overlay at a new view/dist pair (the next assignment
// trial), retaining scratch buffers and the memo map's capacity.
func (o *Overlay) Reset(view netlist.View, dist map[netlist.NetID]int) {
	o.view = view
	o.dist = dist
	clear(o.memo)
}

// Bit analyzes the fanin cone of net under the overlay view, exactly as
// Builder.Bit does under the base view.
func (o *Overlay) Bit(net netlist.NetID) *BitCone {
	if _, isConst := o.view.NetConst(net); isConst {
		return nil
	}
	g := o.view.DriverOf(net)
	if g == netlist.NoGate {
		return nil
	}
	kind := o.view.GateKind(g)
	if !kind.IsCombinational() {
		return nil
	}
	o.inbuf = o.view.GateInputs(g, o.inbuf[:0])
	bc := &BitCone{Net: net, RootGate: g, RootKind: kind}
	bc.Subtrees = make([]Subtree, 0, len(o.inbuf))
	for _, in := range o.inbuf {
		bc.Subtrees = append(bc.Subtrees, Subtree{Root: in, Key: o.SubtreeKey(in, o.base.depth-1)})
	}
	sortSubtrees(bc.Subtrees)
	o.idbuf = o.idbuf[:0]
	for _, st := range bc.Subtrees {
		o.idbuf = append(o.idbuf, st.Key)
	}
	bc.FullKey = o.base.intern.InternNode(kind, o.idbuf)
	return bc
}

// SubtreeKey returns the key of (net, depth) under the overlay view,
// delegating to the base builder's memo whenever the subtree is out of the
// modification's reach.
func (o *Overlay) SubtreeKey(net netlist.NetID, depth int) KeyID {
	return o.subtreeKey(net, depth, 0)
}

func (o *Overlay) subtreeKey(net netlist.NetID, depth, level int) KeyID {
	if depth <= 0 {
		return LeafKey
	}
	if d, dirty := o.dist[net]; !dirty || d > depth {
		return o.base.subtreeKey(net, depth, 0)
	}
	mk := memoKey{net: net, depth: int32(depth)}
	if id, ok := o.memo[mk]; ok {
		return id
	}
	id := LeafKey
	if _, isConst := o.view.NetConst(net); !isConst {
		if g := o.view.DriverOf(net); g != netlist.NoGate {
			if kind := o.view.GateKind(g); kind.IsCombinational() {
				for len(o.frames) <= level {
					o.frames = append(o.frames, keyFrame{})
				}
				o.frames[level].nets = o.view.GateInputs(g, o.frames[level].nets[:0])
				o.frames[level].ids = o.frames[level].ids[:0]
				for i := 0; i < len(o.frames[level].nets); i++ {
					k := o.subtreeKey(o.frames[level].nets[i], depth-1, level+1)
					o.frames[level].ids = append(o.frames[level].ids, k)
				}
				id = o.base.intern.InternNode(kind, o.frames[level].ids)
			}
		}
	}
	o.memo[mk] = id
	return id
}
