package cone

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// chainNet builds: bit = NAND(x1, x2) where x1 = NAND(a,b), x2 = NAND(c,d),
// a..d primary inputs — a uniform two-level cone.
func chainNet(t *testing.T) (*netlist.Netlist, netlist.NetID) {
	t.Helper()
	nl := netlist.New("chain")
	var pis []netlist.NetID
	for _, n := range []string{"a", "b", "c", "d"} {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		pis = append(pis, id)
	}
	x1 := nl.MustNet("x1")
	x2 := nl.MustNet("x2")
	bit := nl.MustNet("bit")
	nl.MustGate("g1", logic.Nand, x1, pis[0], pis[1])
	nl.MustGate("g2", logic.Nand, x2, pis[2], pis[3])
	nl.MustGate("g3", logic.Nand, bit, x1, x2)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, bit
}

func TestInterner(t *testing.T) {
	it := NewInterner()
	a := it.Intern("foo")
	b := it.Intern("bar")
	if a == b {
		t.Fatal("distinct strings share an ID")
	}
	if it.Intern("foo") != a {
		t.Error("re-interning changed the ID")
	}
	if it.String(a) != "foo" || it.String(b) != "bar" {
		t.Error("String lookup wrong")
	}
	if it.String(KeyID(99)) != "<nokey>" {
		t.Error("out-of-range KeyID")
	}
	if it.Len() != 3 { // leaf + two atoms
		t.Errorf("Len = %d", it.Len())
	}
	if it.Intern(leafToken) != LeafKey {
		t.Error("interning the leaf token must yield LeafKey")
	}
	if it.String(LeafKey) != leafToken {
		t.Errorf("leaf renders %q", it.String(LeafKey))
	}
}

func TestInternNodeHashConsing(t *testing.T) {
	it := NewInterner()
	n1 := it.InternNode(logic.Nand, []KeyID{LeafKey, LeafKey})
	n2 := it.InternNode(logic.Nand, []KeyID{LeafKey, LeafKey})
	if n1 != n2 {
		t.Error("identical tuples must hash-cons to one ID")
	}
	if it.InternNode(logic.Nor, []KeyID{LeafKey, LeafKey}) == n1 {
		t.Error("different kinds share an ID")
	}
	if it.InternNode(logic.Nand, []KeyID{LeafKey}) == n1 {
		t.Error("different arities share an ID")
	}
	// Tuple identity is order-insensitive (children are sorted).
	x := it.InternNode(logic.Not, []KeyID{LeafKey})
	ab := it.InternNode(logic.Nand, []KeyID{x, n1})
	ba := it.InternNode(logic.Nand, []KeyID{n1, x})
	if ab != ba {
		t.Error("child order changed the interned ID")
	}
	if got := it.String(n1); got != "(..N)" {
		t.Errorf("render = %q, want (..N)", got)
	}
	if got := it.String(ab); got != "((..N)(.I)N)" {
		t.Errorf("render = %q, want ((..N)(.I)N)", got)
	}
}

// TestMemoDepthNotTruncated: the memo key stores the full depth. The old
// int8 field wrapped above 127, aliasing (net, d) with (net, d-256) and
// returning the shallow key for the deep expansion.
func TestMemoDepthNotTruncated(t *testing.T) {
	nl := netlist.New("t")
	prev := nl.MustNet("pi")
	nl.MarkPI(prev)
	var last netlist.NetID
	for i := 0; i < 300; i++ {
		last = nl.MustNet("n" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		nl.MustGate("g"+string(rune('a'+i%26))+string(rune('0'+i/26)), logic.Not, last, prev)
		prev = last
	}
	it := NewInterner()
	b := NewBuilder(nl, it, 300)
	shallow := b.SubtreeKey(last, 2)
	deep := b.SubtreeKey(last, 258) // int8(258) == 2: the old memo aliased these
	if shallow == deep {
		t.Fatal("depth-258 key aliased with depth-2 key")
	}
	if again := b.SubtreeKey(last, 258); again != deep {
		t.Error("memoized deep key unstable")
	}
}

func TestNewBuilderDepthClamp(t *testing.T) {
	nl, _ := chainNet(t)
	if d := NewBuilder(nl, NewInterner(), -3).Depth(); d != DefaultDepth {
		t.Errorf("negative depth -> %d, want DefaultDepth", d)
	}
	if d := NewBuilder(nl, NewInterner(), MaxDepth+1).Depth(); d != MaxDepth {
		t.Errorf("huge depth -> %d, want MaxDepth", d)
	}
}

func TestBitCone(t *testing.T) {
	nl, bit := chainNet(t)
	it := NewInterner()
	b := NewBuilder(nl, it, 4)
	bc := b.Bit(bit)
	if bc == nil {
		t.Fatal("no cone for driven net")
	}
	if bc.RootKind != logic.Nand {
		t.Errorf("root kind %s", bc.RootKind)
	}
	if len(bc.Subtrees) != 2 {
		t.Fatalf("want 2 second-level subtrees, got %d", len(bc.Subtrees))
	}
	// Both subtrees are NAND over two leaves: identical keys.
	if bc.Subtrees[0].Key != bc.Subtrees[1].Key {
		t.Errorf("uniform subtrees got different keys: %q vs %q",
			it.String(bc.Subtrees[0].Key), it.String(bc.Subtrees[1].Key))
	}
	if it.String(bc.Subtrees[0].Key) != "(..N)" {
		t.Errorf("subtree key = %q, want (..N)", it.String(bc.Subtrees[0].Key))
	}
	if it.String(bc.FullKey) != "((..N)(..N)N)" {
		t.Errorf("full key = %q", it.String(bc.FullKey))
	}
}

func TestBitNilCases(t *testing.T) {
	nl := netlist.New("t")
	pi := nl.MustNet("pi")
	nl.MarkPI(pi)
	q := nl.MustNet("q")
	d := nl.MustNet("d")
	nl.MustGate("inv", logic.Not, d, pi)
	nl.MustGate("ff", logic.DFF, q, d)
	it := NewInterner()
	b := NewBuilder(nl, it, 4)
	if b.Bit(pi) != nil {
		t.Error("primary input must have no cone")
	}
	if b.Bit(q) != nil {
		t.Error("FF output must have no cone")
	}
	if b.Bit(d) == nil {
		t.Error("driven net must have a cone")
	}
}

func TestDepthLimiting(t *testing.T) {
	// A chain of 6 inverters; keys must stop growing beyond the depth.
	nl := netlist.New("t")
	prev := nl.MustNet("pi")
	nl.MarkPI(prev)
	var last netlist.NetID
	for i := 0; i < 6; i++ {
		last = nl.MustNet(string(rune('a' + i)))
		nl.MustGate(string(rune('p'+i)), logic.Not, last, prev)
		prev = last
	}
	it := NewInterner()
	d2 := NewBuilder(nl, it, 2).Bit(last)
	d4 := NewBuilder(nl, it, 4).Bit(last)
	k2 := it.String(d2.Subtrees[0].Key)
	k4 := it.String(d4.Subtrees[0].Key)
	if k2 != "(.I)" {
		t.Errorf("depth-2 subtree key = %q", k2)
	}
	if k4 != "(((.I)I)I)" {
		t.Errorf("depth-4 subtree key = %q", k4)
	}
}

// TestFaninPermutationInvariance: the hash key must be identical when a
// gate's input pins are permuted (fanins are sorted lexicographically).
func TestFaninPermutationInvariance(t *testing.T) {
	build := func(perm []int) string {
		nl := netlist.New("t")
		var leaves []netlist.NetID
		for _, n := range []string{"a", "b", "c"} {
			id := nl.MustNet(n)
			nl.MarkPI(id)
			leaves = append(leaves, id)
		}
		// Three structurally different children so permutation matters.
		x := nl.MustNet("x")
		nl.MustGate("gx", logic.Not, x, leaves[0])
		y := nl.MustNet("y")
		nl.MustGate("gy", logic.Nand, y, leaves[0], leaves[1])
		z := nl.MustNet("z")
		nl.MustGate("gz", logic.Nor, z, leaves[1], leaves[2])
		kids := []netlist.NetID{x, y, z}
		bit := nl.MustNet("bit")
		nl.MustGate("gr", logic.And, bit, kids[perm[0]], kids[perm[1]], kids[perm[2]])
		it := NewInterner()
		bc := NewBuilder(nl, it, 4).Bit(bit)
		return it.String(bc.FullKey)
	}
	want := build([]int{0, 1, 2})
	perms := [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		if got := build(p); got != want {
			t.Errorf("perm %v: key %q != %q", p, got, want)
		}
	}
}

// TestReconvergence: a net feeding two pins unfolds as a tree (the shared
// subtree appears in both branches).
func TestReconvergence(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	s := nl.MustNet("s")
	nl.MustGate("gs", logic.Not, s, a)
	bit := nl.MustNet("bit")
	nl.MustGate("gr", logic.And, bit, s, s)
	it := NewInterner()
	bc := NewBuilder(nl, it, 4).Bit(bit)
	if got := it.String(bc.FullKey); got != "((.I)(.I)A)" {
		t.Errorf("full key = %q", got)
	}
}

func TestSubtreeNets(t *testing.T) {
	nl, bit := chainNet(t)
	it := NewInterner()
	b := NewBuilder(nl, it, 4)
	bc := b.Bit(bit)
	nets := b.SubtreeNets(bc.Subtrees[0].Root, 3)
	// Subtree x1 (or x2): root + two leaves.
	if len(nets) != 3 {
		t.Errorf("subtree nets = %d, want 3", len(nets))
	}
	if !nets[bc.Subtrees[0].Root] {
		t.Error("root missing from subtree nets")
	}
	// Depth 0 keeps only the root.
	if got := b.SubtreeNets(bc.Subtrees[0].Root, 0); len(got) != 1 {
		t.Errorf("depth-0 nets = %d", len(got))
	}
}

func TestMemoizationConsistency(t *testing.T) {
	// Same (net, depth) must give the same key across calls; different
	// depths may differ.
	nl, bit := chainNet(t)
	it := NewInterner()
	b := NewBuilder(nl, it, 4)
	bc := b.Bit(bit)
	k1 := b.SubtreeKey(bc.Subtrees[0].Root, 3)
	k2 := b.SubtreeKey(bc.Subtrees[0].Root, 3)
	if k1 != k2 {
		t.Error("memoized key differs")
	}
}

// randomDAG builds a random small combinational netlist and returns it with
// its internal nets; used by the fuzz-like determinism test.
func randomDAG(rng *rand.Rand) (*netlist.Netlist, []netlist.NetID) {
	nl := netlist.New("rnd")
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		id := nl.MustNet("pi" + string(rune('0'+i)))
		nl.MarkPI(id)
		nets = append(nets, id)
	}
	kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	var internal []netlist.NetID
	for i := 0; i < 12; i++ {
		k := kinds[rng.Intn(len(kinds))]
		n := 2
		if k == logic.Not {
			n = 1
		} else if rng.Intn(3) == 0 {
			n = 3
		}
		ins := make([]netlist.NetID, n)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := nl.MustNet("n" + string(rune('a'+i)))
		nl.MustGate("g"+string(rune('a'+i)), k, out, ins...)
		nets = append(nets, out)
		internal = append(internal, out)
	}
	return nl, internal
}

func TestKeyDeterminismOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		nl, internal := randomDAG(rand.New(rand.NewSource(seed)))
		it1 := NewInterner()
		it2 := NewInterner()
		b1 := NewBuilder(nl, it1, 4)
		b2 := NewBuilder(nl, it2, 4)
		for _, n := range internal {
			c1, c2 := b1.Bit(n), b2.Bit(n)
			if (c1 == nil) != (c2 == nil) {
				t.Fatalf("seed %d: nil disagreement", seed)
			}
			if c1 == nil {
				continue
			}
			if it1.String(c1.FullKey) != it2.String(c2.FullKey) {
				t.Fatalf("seed %d: keys differ for %s", seed, nl.NetName(n))
			}
		}
	}
}
