package cone

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/reduce"
)

// randCircuit builds a layered random combinational circuit: nPI primary
// inputs followed by nGates gates whose inputs are drawn from earlier nets.
// A few DFFs are sprinkled in so boundary handling is exercised too.
func randCircuit(rng *rand.Rand, nPI, nGates int) (*netlist.Netlist, []netlist.NetID) {
	nl := netlist.New("rand")
	var nets []netlist.NetID
	for i := 0; i < nPI; i++ {
		id := nl.MustNet("pi" + string(rune('a'+i)))
		nl.MarkPI(id)
		nets = append(nets, id)
	}
	kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	var driven []netlist.NetID
	for i := 0; i < nGates; i++ {
		out := nl.MustNet("n" + itoa(i))
		kind := kinds[rng.Intn(len(kinds))]
		if rng.Intn(10) == 0 {
			kind = logic.DFF
		}
		nIn := 2 + rng.Intn(2)
		if kind == logic.Not || kind == logic.DFF {
			nIn = 1
		}
		ins := make([]netlist.NetID, nIn)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		nl.MustGate("g"+itoa(i), kind, out, ins...)
		nets = append(nets, out)
		driven = append(driven, out)
	}
	return nl, driven
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestOverlayMatchesFreshBuilder is the soundness check for the incremental
// trial path: for random circuits and random assignments, every key the
// Overlay produces over the reduced view must equal the key a from-scratch
// Builder over the same view (sharing the interner) produces.
func TestOverlayMatchesFreshBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const depth = DefaultDepth
	for trial := 0; trial < 50; trial++ {
		nl, driven := randCircuit(rng, 5, 40)
		if err := nl.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		it := NewInterner()
		base := NewBuilder(nl, it, depth)
		// Warm the base memo the way the pipeline does: key every driven net.
		for _, n := range driven {
			base.Bit(n)
		}

		// Random assignment of one or two PIs.
		assign := map[netlist.NetID]logic.Value{}
		for k := 0; k < 1+rng.Intn(2); k++ {
			pi := netlist.NetID(rng.Intn(5))
			v := logic.Zero
			if rng.Intn(2) == 1 {
				v = logic.One
			}
			assign[pi] = v
		}
		red, err := reduce.Apply(nl, assign)
		if err != nil {
			continue // contradictory draw; try the next trial
		}
		dist := red.DirtyDistances(depth - 1)
		ov := base.Overlay(red, dist)
		fresh := NewBuilder(red, it, depth)

		for _, n := range driven {
			got := ov.Bit(n)
			want := fresh.Bit(n)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d net %s: overlay nil=%v fresh nil=%v",
					trial, nl.NetName(n), got == nil, want == nil)
			}
			if got == nil {
				continue
			}
			if got.FullKey != want.FullKey {
				t.Fatalf("trial %d net %s: overlay FullKey %q fresh %q",
					trial, nl.NetName(n), it.String(got.FullKey), it.String(want.FullKey))
			}
			if len(got.Subtrees) != len(want.Subtrees) {
				t.Fatalf("trial %d net %s: subtree count %d vs %d",
					trial, nl.NetName(n), len(got.Subtrees), len(want.Subtrees))
			}
			for i := range got.Subtrees {
				if got.Subtrees[i].Key != want.Subtrees[i].Key {
					t.Fatalf("trial %d net %s subtree %d: %q vs %q", trial, nl.NetName(n), i,
						it.String(got.Subtrees[i].Key), it.String(want.Subtrees[i].Key))
				}
			}
		}
	}
}

// TestOverlayReset re-targets one Overlay across successive trials, as
// tryAssignment does, and checks results stay consistent with fresh builders.
func TestOverlayReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl, driven := randCircuit(rng, 5, 30)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	it := NewInterner()
	base := NewBuilder(nl, it, DefaultDepth)
	for _, n := range driven {
		base.Bit(n)
	}
	var ov *Overlay
	for trial := 0; trial < 20; trial++ {
		pi := netlist.NetID(rng.Intn(5))
		v := logic.Zero
		if rng.Intn(2) == 1 {
			v = logic.One
		}
		red, err := reduce.Apply(nl, map[netlist.NetID]logic.Value{pi: v})
		if err != nil {
			continue
		}
		dist := red.DirtyDistances(DefaultDepth - 1)
		if ov == nil {
			ov = base.Overlay(red, dist)
		} else {
			ov.Reset(red, dist)
		}
		fresh := NewBuilder(red, it, DefaultDepth)
		for _, n := range driven {
			got, want := ov.Bit(n), fresh.Bit(n)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d net %s: nil mismatch", trial, nl.NetName(n))
			}
			if got != nil && got.FullKey != want.FullKey {
				t.Fatalf("trial %d net %s: FullKey %q vs %q", trial, nl.NetName(n),
					it.String(got.FullKey), it.String(want.FullKey))
			}
		}
	}
}
