package cone

import (
	"sort"
	"strings"

	"gatewords/internal/logic"
)

// KeyID is an interned structural hash key. Two subtrees are structurally
// similar exactly when their KeyIDs are equal (for keys produced by the same
// Interner). KeyIDs carry a stable per-interner total order (numeric), used
// to sort subtree key lists; the order is only meaningful between keys of
// one Interner.
type KeyID int32

// NoKey is the invalid KeyID sentinel.
const NoKey KeyID = -1

// LeafKey is the key of every cone leaf (primary input, flip-flop boundary,
// constant, or depth cut). NewInterner pre-interns it, so it is ID 0 in
// every Interner.
const LeafKey KeyID = 0

// node tags distinguish the three record shapes an Interner stores.
const (
	tagLeaf uint8 = iota
	tagAtom       // free-form string key (tests and debugging only)
	tagGate       // gate kind over a sorted child-key tuple
)

// keyNode is one hash-consed structural record: a gate kind over the sorted
// tuple of its children's KeyIDs. Children live in the interner's shared
// arena; per-node allocation is a constant-size record, never a string.
type keyNode struct {
	tag  uint8
	kind logic.Kind // valid for tagGate
	off  uint32     // child tuple start in childIDs
	n    uint32     // child count
}

// Interner hash-conses structural keys as (kind, sorted child KeyID tuple)
// records and hands out dense IDs. Computing a node's key is O(fanin); no
// Polish-expression string is ever built on the identification path. The
// string rendering of a key is derived lazily (and memoized) only for
// debugging and traces via String.
//
// Deduplication uses an open-addressing table (linear probing) over the
// node hashes rather than a bucket map: the hot path then allocates only
// amortized slice growth, never per-node bucket cells.
//
// A single Interner must be shared by every Builder participating in one
// analysis so that KeyIDs are comparable across original and reduced
// circuits.
type Interner struct {
	nodes    []keyNode
	childIDs []KeyID          // shared child-tuple arena
	hashes   []uint64         // per-node hash, for probe-table resize
	table    []int32          // open addressing; entry = KeyID+1, 0 = empty
	atoms    map[string]KeyID // tagAtom lookup
	strs     map[KeyID]string // lazy renderings (plus eager atom strings)
}

// NewInterner returns an interner holding only the leaf key.
func NewInterner() *Interner {
	it := &Interner{table: make([]int32, 64)}
	it.nodes = append(it.nodes, keyNode{tag: tagLeaf})
	it.hashes = append(it.hashes, 0)
	return it
}

// fnv-1a over the (kind, children, arity) tuple.
func hashNode(kind logic.Kind, children []KeyID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(kind)) * prime64
	for _, c := range children {
		h = (h ^ uint64(uint32(c))) * prime64
	}
	h = (h ^ uint64(len(children))) * prime64
	return h
}

// sortKeyIDs sorts a small key tuple in place (insertion sort: gate fanins
// are tiny, and this avoids the sort.Slice closure allocation).
func sortKeyIDs(a []KeyID) {
	if len(a) > 24 {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// InternNode returns the ID of the structural key "kind over the multiset
// children", allocating one if needed. children is sorted in place (the
// canonical tuple is order-insensitive, §2.3's pin-permutation invariance);
// the caller may reuse the slice afterwards — the interner copies it into
// its arena only when the node is new.
func (it *Interner) InternNode(kind logic.Kind, children []KeyID) KeyID {
	sortKeyIDs(children)
	h := hashNode(kind, children)
	mask := uint64(len(it.table) - 1)
	idx := h & mask
	for {
		slot := it.table[idx]
		if slot == 0 {
			break
		}
		id := KeyID(slot - 1)
		if it.hashes[id] == h {
			n := it.nodes[id]
			if n.kind == kind && int(n.n) == len(children) {
				stored := it.childIDs[n.off : n.off+n.n]
				same := true
				for i, c := range stored {
					if c != children[i] {
						same = false
						break
					}
				}
				if same {
					return id
				}
			}
		}
		idx = (idx + 1) & mask
	}
	id := KeyID(len(it.nodes))
	it.nodes = append(it.nodes, keyNode{
		tag:  tagGate,
		kind: kind,
		off:  uint32(len(it.childIDs)),
		n:    uint32(len(children)),
	})
	it.hashes = append(it.hashes, h)
	it.childIDs = append(it.childIDs, children...)
	it.table[idx] = int32(id) + 1
	// Keep the load factor under 3/4 (nodes overcounts table residents by
	// the leaf and any atoms, which only makes the bound more conservative).
	if len(it.nodes)*4 > len(it.table)*3 {
		it.grow()
	}
	return id
}

// grow doubles the probe table and reinserts every gate node by its stored
// hash.
func (it *Interner) grow() {
	nt := make([]int32, len(it.table)*2)
	mask := uint64(len(nt) - 1)
	for id, n := range it.nodes {
		if n.tag != tagGate {
			continue
		}
		idx := it.hashes[id] & mask
		for nt[idx] != 0 {
			idx = (idx + 1) & mask
		}
		nt[idx] = int32(id) + 1
	}
	it.table = nt
}

// Intern returns the ID of a free-form atom key. Atoms exist for tests and
// debugging (fabricating key lists without a netlist); the identification
// pipeline only ever interns structural nodes. Interning the leaf token
// returns LeafKey.
func (it *Interner) Intern(s string) KeyID {
	if s == leafToken {
		return LeafKey
	}
	if id, ok := it.atoms[s]; ok {
		return id
	}
	if it.atoms == nil {
		it.atoms = make(map[string]KeyID)
	}
	id := KeyID(len(it.nodes))
	it.nodes = append(it.nodes, keyNode{tag: tagAtom})
	it.hashes = append(it.hashes, 0)
	it.setString(id, s)
	it.atoms[s] = id
	return id
}

func (it *Interner) setString(id KeyID, s string) {
	if it.strs == nil {
		it.strs = make(map[KeyID]string)
	}
	it.strs[id] = s
}

// String renders the Polish-expression form of a key — "(" + children in
// lexicographic rendered order + gate token + ")" — computing and caching it
// on first use. The rendering is canonical (independent of the interner's
// ID assignment order), so it matches across interners and equals the key
// strings the pre-hash-consing engine produced. Debug/trace only: nothing
// on the identification path calls it.
func (it *Interner) String(id KeyID) string {
	if id < 0 || int(id) >= len(it.nodes) {
		return "<nokey>"
	}
	return it.render(id)
}

func (it *Interner) render(id KeyID) string {
	n := it.nodes[id]
	if n.tag == tagLeaf {
		return leafToken
	}
	if s, ok := it.strs[id]; ok {
		return s
	}
	if n.tag != tagGate {
		return "<nokey>" // atom without a stored string cannot happen
	}
	kids := it.childIDs[n.off : n.off+n.n]
	parts := make([]string, len(kids))
	for i, c := range kids {
		parts[i] = it.render(c)
	}
	sort.Strings(parts)
	var sb strings.Builder
	sb.WriteByte('(')
	for _, p := range parts {
		sb.WriteString(p)
	}
	sb.WriteByte(kindToken(n.kind))
	sb.WriteByte(')')
	s := sb.String()
	it.setString(id, s)
	return s
}

// Len returns the number of distinct keys interned so far (including the
// pre-interned leaf key).
func (it *Interner) Len() int { return len(it.nodes) }
