package cone

// MatchResult classifies the subtrees of two bits after the sorted
// two-pointer comparison: Matched counts structurally similar subtree pairs;
// DissimA/DissimB index the unmatched (dissimilar) subtrees of each bit.
type MatchResult struct {
	Matched int
	DissimA []int
	DissimB []int
}

// Full reports whether every subtree of both bits matched.
func (m MatchResult) Full() bool { return len(m.DissimA) == 0 && len(m.DissimB) == 0 }

// Partial reports whether at least one subtree pair matched but not all.
func (m MatchResult) Partial() bool { return m.Matched > 0 && !m.Full() }

// Match compares the sorted hash-key lists of two bits in O(k_a + k_b) with
// the two-pointer walk of §2.3: when the keys under the pointers are equal
// the subtrees are similar and both pointers advance; otherwise the pointer
// at the smaller key advances and that subtree is recorded as dissimilar.
// Keys are interned, so "smaller" is the interner's numeric key order; both
// bits must come from builders sharing one Interner.
func Match(a, b *BitCone) MatchResult {
	var res MatchResult
	i, j := 0, 0
	for i < len(a.Subtrees) && j < len(b.Subtrees) {
		ka, kb := a.Subtrees[i].Key, b.Subtrees[j].Key
		if ka == kb {
			res.Matched++
			i++
			j++
			continue
		}
		if ka < kb {
			res.DissimA = append(res.DissimA, i)
			i++
		} else {
			res.DissimB = append(res.DissimB, j)
			j++
		}
	}
	for ; i < len(a.Subtrees); i++ {
		res.DissimA = append(res.DissimA, i)
	}
	for ; j < len(b.Subtrees); j++ {
		res.DissimB = append(res.DissimB, j)
	}
	return res
}

// FullMatch reports whether two bits have fully matching fanin cones: same
// effective root kind and identical sorted subtree key lists. This is
// equivalent to equality of the whole-cone keys.
func FullMatch(a, b *BitCone) bool {
	return a.RootKind == b.RootKind && a.FullKey == b.FullKey
}

// PartialMatch reports whether two bits share the root gate kind and at
// least one similar subtree (the grouping criterion of §2.3).
func PartialMatch(a, b *BitCone) bool {
	if a.RootKind != b.RootKind {
		return false
	}
	return Match(a, b).Matched > 0
}

// CommonKeys returns the multiset intersection of the subtree key lists of
// all bits, sorted in the interner's key order. This is the "similar
// portion" shared by every bit of a subgroup; a bit's subtrees outside it
// are its dissimilar subtrees.
func CommonKeys(bits []*BitCone) []KeyID {
	if len(bits) == 0 {
		return nil
	}
	common := make([]KeyID, len(bits[0].Subtrees))
	for i, st := range bits[0].Subtrees {
		common[i] = st.Key
	}
	for _, b := range bits[1:] {
		common = intersectSorted(common, b)
		if len(common) == 0 {
			break
		}
	}
	return common
}

func intersectSorted(common []KeyID, b *BitCone) []KeyID {
	out := common[:0]
	i, j := 0, 0
	for i < len(common) && j < len(b.Subtrees) {
		ka, kb := common[i], b.Subtrees[j].Key
		if ka == kb {
			out = append(out, ka)
			i++
			j++
			continue
		}
		if ka < kb {
			i++
		} else {
			j++
		}
	}
	return out
}

// Dissimilar returns the subtrees of bit whose keys are not covered by the
// common multiset (which must be sorted in the interner's key order, as
// produced by CommonKeys).
func Dissimilar(bit *BitCone, common []KeyID) []Subtree {
	var out []Subtree
	j := 0
	for _, st := range bit.Subtrees {
		for j < len(common) && common[j] < st.Key {
			j++
		}
		if j < len(common) && common[j] == st.Key {
			j++ // consumed one occurrence of the common multiset
			continue
		}
		out = append(out, st)
	}
	return out
}

// SimilarFraction returns the fraction of bit's subtrees covered by the
// common multiset: 1.0 for a fully similar bit, 0.0 when nothing matches.
// Bits with no subtrees report 0.
func SimilarFraction(bit *BitCone, common []KeyID) float64 {
	if len(bit.Subtrees) == 0 {
		return 0
	}
	dis := len(Dissimilar(bit, common))
	return float64(len(bit.Subtrees)-dis) / float64(len(bit.Subtrees))
}
