// Package cone implements depth-limited fanin-cone analysis: extraction of a
// candidate bit's cone, decomposition into second-level subtrees, post-order
// structural hash keys ("Polish expressions" over gate kinds with
// lexicographically sorted fanins, DAC'15 §2.3), and the O(k_i+k_j)
// two-pointer comparison of sorted hash-key lists that classifies subtree
// pairs as similar or dissimilar.
//
// Everything here is written against netlist.View, so the same machinery
// analyzes both the original circuit and a constant-propagated reduced
// circuit produced by internal/reduce.
package cone

import (
	"sort"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// KeyID is an interned structural hash key. Two subtrees are structurally
// similar exactly when their KeyIDs are equal (for keys produced by the same
// Interner).
type KeyID int32

// NoKey is the zero KeyID's invalid sentinel.
const NoKey KeyID = -1

// Interner maps structural key strings to dense IDs and back. A single
// Interner must be shared by every Builder participating in one analysis so
// that KeyIDs are comparable across original and reduced circuits.
type Interner struct {
	ids  map[string]KeyID
	strs []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]KeyID)}
}

// Intern returns the ID for s, allocating one if needed.
func (it *Interner) Intern(s string) KeyID {
	if id, ok := it.ids[s]; ok {
		return id
	}
	id := KeyID(len(it.strs))
	it.strs = append(it.strs, s)
	it.ids[s] = id
	return id
}

// String returns the key string for id.
func (it *Interner) String(id KeyID) string {
	if id < 0 || int(id) >= len(it.strs) {
		return "<nokey>"
	}
	return it.strs[id]
}

// Len returns the number of distinct keys interned so far.
func (it *Interner) Len() int { return len(it.strs) }

// kindToken returns the single-character token recorded for each node of a
// post-order traversal. Only the gate type is recorded, per the paper.
func kindToken(k logic.Kind) byte {
	switch k {
	case logic.And:
		return 'A'
	case logic.Or:
		return 'O'
	case logic.Nand:
		return 'N'
	case logic.Nor:
		return 'R'
	case logic.Xor:
		return 'X'
	case logic.Xnor:
		return 'E'
	case logic.Not:
		return 'I'
	case logic.Buf:
		return 'B'
	case logic.Mux2:
		return 'M'
	case logic.Aoi21:
		return 'P'
	case logic.Oai21:
		return 'Q'
	case logic.DFF:
		return 'D'
	}
	return '?'
}

// leafToken marks a cone leaf: a primary input, a flip-flop boundary, a
// constant, or the depth cut. Leaves record no identity, only that the
// branch ends, keeping the match purely structural.
const leafToken = "."

// Subtree is one second-level subtree of a bit's fanin cone: the subtree
// rooted at one input net of the bit's root gate.
type Subtree struct {
	Root netlist.NetID // net at the subtree root
	Key  KeyID
}

// BitCone is the analyzed fanin cone of one candidate word bit.
type BitCone struct {
	Net      netlist.NetID  // the candidate bit (a driven net)
	RootGate netlist.GateID // gate driving Net (under the view)
	RootKind logic.Kind     // effective kind of RootGate
	Subtrees []Subtree      // second-level subtrees, sorted by Key
	FullKey  KeyID          // key of the entire cone including the root
}

// Builder computes cones and hash keys against one netlist.View. It
// memoizes subtree keys per (net, depth), which is what makes whole-design
// analysis linear in practice despite tree unfolding.
type Builder struct {
	view   netlist.View
	intern *Interner
	depth  int
	memo   map[memoKey]KeyID
	inbuf  []netlist.NetID
}

type memoKey struct {
	net   netlist.NetID
	depth int8
}

// DefaultDepth is the fanin-cone depth used throughout the paper: similarity
// beyond 2–4 levels of logic is destroyed by optimization, so 4 levels is
// the default analysis window.
const DefaultDepth = 4

// NewBuilder returns a Builder over view with the given cone depth (total
// levels of logic including the root gate). Builders sharing an analysis
// must share the Interner.
func NewBuilder(view netlist.View, intern *Interner, depth int) *Builder {
	if depth < 1 {
		depth = DefaultDepth
	}
	return &Builder{view: view, intern: intern, depth: depth, memo: make(map[memoKey]KeyID)}
}

// Depth returns the configured cone depth.
func (b *Builder) Depth() int { return b.depth }

// Interner returns the shared key interner.
func (b *Builder) Interner() *Interner { return b.intern }

// Bit analyzes the fanin cone of net. It returns nil if the net has no
// driving combinational gate under the view (primary inputs, FF outputs and
// simplified-away nets have no cone).
func (b *Builder) Bit(net netlist.NetID) *BitCone {
	if _, isConst := b.view.NetConst(net); isConst {
		return nil
	}
	g := b.view.DriverOf(net)
	if g == netlist.NoGate {
		return nil
	}
	kind := b.view.GateKind(g)
	if !kind.IsCombinational() {
		return nil
	}
	b.inbuf = b.view.GateInputs(g, b.inbuf[:0])
	bc := &BitCone{Net: net, RootGate: g, RootKind: kind}
	bc.Subtrees = make([]Subtree, 0, len(b.inbuf))
	for _, in := range b.inbuf {
		bc.Subtrees = append(bc.Subtrees, Subtree{Root: in, Key: b.SubtreeKey(in, b.depth-1)})
	}
	sort.Slice(bc.Subtrees, func(i, j int) bool {
		return b.less(bc.Subtrees[i].Key, bc.Subtrees[j].Key)
	})
	// The full-cone key is the root kind over its sorted child keys; since
	// Subtrees is already sorted in string order this is a direct rebuild.
	var sb strings.Builder
	sb.WriteByte('(')
	for _, st := range bc.Subtrees {
		sb.WriteString(b.intern.String(st.Key))
	}
	sb.WriteByte(kindToken(kind))
	sb.WriteByte(')')
	bc.FullKey = b.intern.Intern(sb.String())
	return bc
}

// SubtreeKey returns the interned post-order key for the subtree rooted at
// net, expanded for depth more levels of logic. Depth 0, primary inputs,
// flip-flop boundaries and constants all yield the leaf key.
func (b *Builder) SubtreeKey(net netlist.NetID, depth int) KeyID {
	mk := memoKey{net: net, depth: int8(depth)}
	if id, ok := b.memo[mk]; ok {
		return id
	}
	id := b.intern.Intern(b.keyString(net, depth))
	b.memo[mk] = id
	return id
}

func (b *Builder) keyString(net netlist.NetID, depth int) string {
	if depth <= 0 {
		return leafToken
	}
	if _, isConst := b.view.NetConst(net); isConst {
		return leafToken
	}
	g := b.view.DriverOf(net)
	if g == netlist.NoGate {
		return leafToken
	}
	kind := b.view.GateKind(g)
	if !kind.IsCombinational() {
		return leafToken // sequential boundary
	}
	ins := b.view.GateInputs(g, nil)
	childStrs := make([]string, len(ins))
	for i, in := range ins {
		childStrs[i] = b.intern.String(b.SubtreeKey(in, depth-1))
	}
	// Multiple fanins of a gate are sorted lexicographically (§2.3), making
	// the key invariant under input pin permutation.
	sort.Strings(childStrs)
	var sb strings.Builder
	sb.WriteByte('(')
	for _, cs := range childStrs {
		sb.WriteString(cs)
	}
	sb.WriteByte(kindToken(kind))
	sb.WriteByte(')')
	return sb.String()
}

// less orders KeyIDs by their underlying key strings, giving every Builder
// that shares an Interner the same total order.
func (b *Builder) less(x, y KeyID) bool {
	return b.intern.String(x) < b.intern.String(y)
}

// SubtreeNets returns the set of nets contained in the subtree rooted at
// net, expanded to depth more levels of logic: the root net, every internal
// net, and boundary (leaf) nets. The result is deduplicated and unordered.
func (b *Builder) SubtreeNets(net netlist.NetID, depth int) map[netlist.NetID]bool {
	out := make(map[netlist.NetID]bool)
	b.collectNets(net, depth, out)
	return out
}

func (b *Builder) collectNets(net netlist.NetID, depth int, out map[netlist.NetID]bool) {
	out[net] = true
	if depth <= 0 {
		return
	}
	if _, isConst := b.view.NetConst(net); isConst {
		return
	}
	g := b.view.DriverOf(net)
	if g == netlist.NoGate || !b.view.GateKind(g).IsCombinational() {
		return
	}
	for _, in := range b.view.GateInputs(g, nil) {
		b.collectNets(in, depth-1, out)
	}
}
