// Package cone implements depth-limited fanin-cone analysis: extraction of a
// candidate bit's cone, decomposition into second-level subtrees, post-order
// structural hash keys over gate kinds with order-insensitive fanins
// (DAC'15 §2.3), and the O(k_i+k_j) two-pointer comparison of sorted
// hash-key lists that classifies subtree pairs as similar or dissimilar.
//
// Keys are hash-consed: each key is an interned (gate kind, sorted child-key
// tuple) record, so computing a node's key is O(fanin) and comparing keys is
// an integer compare. The Polish-expression string form of a key exists only
// as a lazy debug rendering (Interner.String).
//
// Everything here is written against netlist.View, so the same machinery
// analyzes both the original circuit and a constant-propagated reduced
// circuit produced by internal/reduce.
package cone

import (
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// kindToken returns the single-character token used when rendering a key as
// a Polish expression. Only the gate type is recorded, per the paper.
func kindToken(k logic.Kind) byte {
	switch k {
	case logic.And:
		return 'A'
	case logic.Or:
		return 'O'
	case logic.Nand:
		return 'N'
	case logic.Nor:
		return 'R'
	case logic.Xor:
		return 'X'
	case logic.Xnor:
		return 'E'
	case logic.Not:
		return 'I'
	case logic.Buf:
		return 'B'
	case logic.Mux2:
		return 'M'
	case logic.Aoi21:
		return 'P'
	case logic.Oai21:
		return 'Q'
	case logic.DFF:
		return 'D'
	}
	return '?'
}

// leafToken marks a cone leaf in the rendered key: a primary input, a
// flip-flop boundary, a constant, or the depth cut. Leaves record no
// identity, only that the branch ends, keeping the match purely structural.
const leafToken = "."

// Subtree is one second-level subtree of a bit's fanin cone: the subtree
// rooted at one input net of the bit's root gate.
type Subtree struct {
	Root netlist.NetID // net at the subtree root
	Key  KeyID
}

// BitCone is the analyzed fanin cone of one candidate word bit.
type BitCone struct {
	Net      netlist.NetID  // the candidate bit (a driven net)
	RootGate netlist.GateID // gate driving Net (under the view)
	RootKind logic.Kind     // effective kind of RootGate
	Subtrees []Subtree      // second-level subtrees, sorted by Key
	FullKey  KeyID          // key of the entire cone including the root
}

// Builder computes cones and hash keys against one netlist.View. It
// memoizes subtree keys per (net, depth), which is what makes whole-design
// analysis linear in practice despite tree unfolding.
type Builder struct {
	view   netlist.View
	intern *Interner
	depth  int
	memo   map[memoKey]KeyID
	inbuf  []netlist.NetID
	idbuf  []KeyID
	frames []keyFrame
}

// memoKey identifies one (net, remaining depth) subtree. Depth is stored
// full-width: a narrow field would silently alias memo entries across
// depths for deep cones (the old int8 field wrapped above 127).
type memoKey struct {
	net   netlist.NetID
	depth int32
}

// keyFrame is per-recursion-level scratch for key computation, so walking a
// cone allocates nothing once the builder is warm.
type keyFrame struct {
	nets []netlist.NetID
	ids  []KeyID
}

// DefaultDepth is the fanin-cone depth used throughout the paper: similarity
// beyond 2–4 levels of logic is destroyed by optimization, so 4 levels is
// the default analysis window.
const DefaultDepth = 4

// MaxDepth caps the cone depth. Depths anywhere near it are useless for
// similarity matching (the paper argues 2–4 levels); the cap bounds
// recursion and scratch sizing. NewBuilder clamps to it.
const MaxDepth = 4096

// NewBuilder returns a Builder over view with the given cone depth (total
// levels of logic including the root gate). Out-of-range depths are
// clamped: depth < 1 selects DefaultDepth, depth > MaxDepth selects
// MaxDepth. Builders sharing an analysis must share the Interner.
func NewBuilder(view netlist.View, intern *Interner, depth int) *Builder {
	if depth < 1 {
		depth = DefaultDepth
	}
	if depth > MaxDepth {
		depth = MaxDepth
	}
	return &Builder{view: view, intern: intern, depth: depth, memo: make(map[memoKey]KeyID)}
}

// Depth returns the configured cone depth.
func (b *Builder) Depth() int { return b.depth }

// Interner returns the shared key interner.
func (b *Builder) Interner() *Interner { return b.intern }

// Bit analyzes the fanin cone of net. It returns nil if the net has no
// driving combinational gate under the view (primary inputs, FF outputs and
// simplified-away nets have no cone).
func (b *Builder) Bit(net netlist.NetID) *BitCone {
	if _, isConst := b.view.NetConst(net); isConst {
		return nil
	}
	g := b.view.DriverOf(net)
	if g == netlist.NoGate {
		return nil
	}
	kind := b.view.GateKind(g)
	if !kind.IsCombinational() {
		return nil
	}
	b.inbuf = b.view.GateInputs(g, b.inbuf[:0])
	bc := &BitCone{Net: net, RootGate: g, RootKind: kind}
	bc.Subtrees = make([]Subtree, 0, len(b.inbuf))
	for _, in := range b.inbuf {
		bc.Subtrees = append(bc.Subtrees, Subtree{Root: in, Key: b.SubtreeKey(in, b.depth-1)})
	}
	sortSubtrees(bc.Subtrees)
	b.idbuf = b.idbuf[:0]
	for _, st := range bc.Subtrees {
		b.idbuf = append(b.idbuf, st.Key)
	}
	// The full-cone key is the root kind over its sorted child keys.
	bc.FullKey = b.intern.InternNode(kind, b.idbuf)
	return bc
}

// sortSubtrees orders a (small) subtree list by key. Insertion sort avoids
// the sort.Slice closure allocation on the per-bit hot path.
func sortSubtrees(sts []Subtree) {
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0 && sts[j].Key < sts[j-1].Key; j-- {
			sts[j], sts[j-1] = sts[j-1], sts[j]
		}
	}
}

// SubtreeKey returns the interned post-order key for the subtree rooted at
// net, expanded for depth more levels of logic. Depth 0, primary inputs,
// flip-flop boundaries and constants all yield LeafKey.
func (b *Builder) SubtreeKey(net netlist.NetID, depth int) KeyID {
	return b.subtreeKey(net, depth, 0)
}

func (b *Builder) subtreeKey(net netlist.NetID, depth, level int) KeyID {
	if depth <= 0 {
		return LeafKey
	}
	mk := memoKey{net: net, depth: int32(depth)}
	if id, ok := b.memo[mk]; ok {
		return id
	}
	id := LeafKey
	if _, isConst := b.view.NetConst(net); !isConst {
		if g := b.view.DriverOf(net); g != netlist.NoGate {
			if kind := b.view.GateKind(g); kind.IsCombinational() {
				for len(b.frames) <= level {
					b.frames = append(b.frames, keyFrame{})
				}
				// Index b.frames each access (never hold a pointer):
				// deeper recursion may grow the slice.
				b.frames[level].nets = b.view.GateInputs(g, b.frames[level].nets[:0])
				b.frames[level].ids = b.frames[level].ids[:0]
				for i := 0; i < len(b.frames[level].nets); i++ {
					k := b.subtreeKey(b.frames[level].nets[i], depth-1, level+1)
					b.frames[level].ids = append(b.frames[level].ids, k)
				}
				id = b.intern.InternNode(kind, b.frames[level].ids)
			}
		}
	}
	b.memo[mk] = id
	return id
}

// SubtreeNets returns the set of nets contained in the subtree rooted at
// net, expanded to depth more levels of logic: the root net, every internal
// net, and boundary (leaf) nets. The result is deduplicated and unordered.
func (b *Builder) SubtreeNets(net netlist.NetID, depth int) map[netlist.NetID]bool {
	out := make(map[netlist.NetID]bool)
	b.collectNets(net, depth, out)
	return out
}

// CollectSubtreeNets adds the subtree's nets (as SubtreeNets defines them)
// to out, letting callers accumulate the union over many roots — e.g. the
// fanin-closed scope of a whole subgroup — without a map per call.
func (b *Builder) CollectSubtreeNets(net netlist.NetID, depth int, out map[netlist.NetID]bool) {
	b.collectNets(net, depth, out)
}

func (b *Builder) collectNets(net netlist.NetID, depth int, out map[netlist.NetID]bool) {
	out[net] = true
	if depth <= 0 {
		return
	}
	if _, isConst := b.view.NetConst(net); isConst {
		return
	}
	g := b.view.DriverOf(net)
	if g == netlist.NoGate || !b.view.GateKind(g).IsCombinational() {
		return
	}
	for _, in := range b.view.GateInputs(g, nil) {
		b.collectNets(in, depth-1, out)
	}
}
