package functional

import (
	"testing"

	"gatewords/internal/bench"
	"gatewords/internal/core"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/reduce"
)

// TestFunctionalOverReducedView composes the paper's pipeline with the
// functional matcher: on the original Figure-1 circuit the third bit
// computes a different cone function (its dissimilar subtree combines the
// control signals differently), but on the circuit reduced under the
// control assignment all three bits share one canonical function. This is
// the §2.1 integration claim for a *functional* downstream tool.
func TestFunctionalOverReducedView(t *testing.T) {
	nl, bits, err := bench.Figure1Circuit()
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(v netlist.View, n netlist.NetID) string {
		k, ok := CanonicalFunction(v, n, 4, 10)
		if !ok {
			t.Fatalf("no function for %s", nl.NetName(n))
		}
		return k
	}
	// Original circuit: the first two bits agree, the third differs.
	k0 := keyOf(nl, bits[0])
	k1 := keyOf(nl, bits[1])
	k2 := keyOf(nl, bits[2])
	if k0 != k1 {
		t.Fatalf("bits 0/1 should share a function before reduction")
	}
	if k0 == k2 {
		t.Fatalf("bit 2 should differ before reduction (the paper's premise)")
	}

	// Harvest the control assignment the pipeline finds and reduce.
	res := core.Identify(nl, core.Options{})
	var assign map[netlist.NetID]logic.Value
	for _, w := range res.Words {
		if len(w.Assignment) > 0 {
			assign = w.Assignment
		}
	}
	if assign == nil {
		t.Fatal("no assignment found")
	}
	red, err := reduce.Apply(nl, assign)
	if err != nil {
		t.Fatal(err)
	}
	r0 := keyOf(red, bits[0])
	r1 := keyOf(red, bits[1])
	r2 := keyOf(red, bits[2])
	if r0 != r1 || r0 != r2 {
		t.Errorf("reduced circuit: bits should share one function (%q %q %q)", r0, r1, r2)
	}
}
