// Package functional implements functional word identification, the class
// of techniques the paper positions as complementary to structural matching
// (§1: "functional techniques usually require some structural processing
// such as finding and enumerating cuts of certain size ... they may be
// applied after words are identified using a structural technique").
//
// Each candidate bit's depth-limited fanin cone is treated as a cut: the
// cone's leaves are its support (capped at MaxSupport inputs), and the
// bit's function is the truth table of the cone over that support. Truth
// tables are put into an NPN-lite canonical form — output phase
// normalization plus an influence-signature input ordering — so two bits
// match when they compute the same function even through different gate
// decompositions (a MUX2 cell vs. its four-NAND form, for example), which
// purely structural hashing cannot see. Grouping then follows the same
// netlist-adjacency discipline as the structural techniques.
package functional

import (
	"sort"

	"gatewords/internal/group"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Options configures the matcher.
type Options struct {
	// Depth bounds the cone (levels of logic, default 4, like the
	// structural matcher).
	Depth int
	// MaxSupport skips bits whose cone has more leaves than this
	// (default 8: truth tables stay <= 256 minterms).
	MaxSupport int
}

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = 4
	}
	if o.MaxSupport <= 0 {
		o.MaxSupport = 8
	}
	if o.MaxSupport > 16 {
		o.MaxSupport = 16
	}
	return o
}

// Result is the functional matcher's output.
type Result struct {
	Words [][]netlist.NetID
	// Skipped counts candidate bits whose support exceeded MaxSupport.
	Skipped int
}

// Identify groups bits whose cones compute the same canonical function,
// within the usual adjacency groups.
func Identify(nl *netlist.Netlist, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	groups := group.Adjacent(nl, group.Options{})
	for _, g := range groups {
		var run []netlist.NetID
		var prev string
		flush := func() {
			if len(run) > 0 {
				res.Words = append(res.Words, run)
				run = nil
			}
			prev = ""
		}
		for _, net := range g {
			key, ok := CanonicalFunction(nl, net, opt.Depth, opt.MaxSupport)
			if !ok {
				res.Skipped++
				flush()
				continue
			}
			if prev != "" && key != prev {
				flush()
			}
			run = append(run, net)
			prev = key
		}
		flush()
	}
	return res
}

// CanonicalFunction computes the canonical truth-table key of a bit's cone,
// or ok=false when the bit has no combinational cone or its support is too
// large.
func CanonicalFunction(v netlist.View, net netlist.NetID, depth, maxSupport int) (string, bool) {
	cone, ok := extractCone(v, net, depth)
	if !ok || len(cone.leaves) > maxSupport {
		return "", false
	}
	tt := simulateCone(v, cone)
	tt = canonicalize(tt, len(cone.leaves))
	return string(tt) + ":" + string(rune('0'+len(cone.leaves))), true
}

// coneGraph is the deduplicated DAG of one bit's depth-limited cone.
type coneGraph struct {
	root    netlist.NetID
	leaves  []netlist.NetID       // sorted support
	order   []netlist.GateID      // gates in topological (eval) order
	kinds   []logic.Kind          // effective kinds per gate
	inputs  [][]netlist.NetID     // effective inputs per gate
	outputs []netlist.NetID       // output net per gate
	index   map[netlist.NetID]int // leaf position
}

// extractCone walks the view from net down to depth levels, collecting the
// gate DAG and the boundary leaves. Unlike the structural hash, the cone is
// a DAG (shared nets evaluated once), which is exact for functions.
func extractCone(v netlist.View, net netlist.NetID, depth int) (*coneGraph, bool) {
	if _, isConst := v.NetConst(net); isConst {
		return nil, false
	}
	root := v.DriverOf(net)
	if root == netlist.NoGate || !v.GateKind(root).IsCombinational() {
		return nil, false
	}
	cg := &coneGraph{root: net, index: map[netlist.NetID]int{}}
	leafSet := map[netlist.NetID]bool{}
	visited := map[netlist.NetID]int{} // net -> deepest remaining budget seen
	// Per-recursion-level scratch for gate inputs: recursion is strictly
	// depth-increasing, so a level's buffer is never live when it is reused
	// by a sibling expansion at the same level.
	frames := make([][]netlist.NetID, depth+1)
	var walk func(n netlist.NetID, budget int)
	walk = func(n netlist.NetID, budget int) {
		if b, ok := visited[n]; ok && b >= budget {
			return
		}
		visited[n] = budget
		if budget <= 0 {
			leafSet[n] = true
			return
		}
		if _, isConst := v.NetConst(n); isConst {
			leafSet[n] = true
			return
		}
		d := v.DriverOf(n)
		if d == netlist.NoGate || !v.GateKind(d).IsCombinational() {
			leafSet[n] = true
			return
		}
		lvl := depth - budget
		frames[lvl] = v.GateInputs(d, frames[lvl][:0])
		for i := 0; i < len(frames[lvl]); i++ {
			walk(frames[lvl][i], budget-1)
		}
	}
	walk(net, depth)
	// A net may have been first cut as a leaf and later expanded with a
	// larger budget; drop leaves that ended up expanded.
	for n := range leafSet {
		if visited[n] > 0 {
			d := v.DriverOf(n)
			if d != netlist.NoGate && v.GateKind(d).IsCombinational() {
				if _, isConst := v.NetConst(n); !isConst {
					delete(leafSet, n)
				}
			}
		}
	}
	for n := range leafSet {
		cg.leaves = append(cg.leaves, n)
	}
	sort.Slice(cg.leaves, func(i, j int) bool { return cg.leaves[i] < cg.leaves[j] })
	for i, n := range cg.leaves {
		cg.index[n] = i
	}

	// Topological order of the cone gates (DFS postorder from the root,
	// stopping at leaves).
	seen := map[netlist.NetID]bool{}
	var build func(n netlist.NetID)
	build = func(n netlist.NetID) {
		if seen[n] || leafSet[n] {
			return
		}
		seen[n] = true
		d := v.DriverOf(n)
		ins := v.GateInputs(d, nil)
		for _, in := range ins {
			build(in)
		}
		cg.order = append(cg.order, d)
		cg.kinds = append(cg.kinds, v.GateKind(d))
		cg.inputs = append(cg.inputs, ins)
		cg.outputs = append(cg.outputs, n)
	}
	build(net)
	return cg, true
}

// simulateCone evaluates the cone for every support assignment, returning a
// packed truth table (bit m = output under minterm m; leaf i is bit i of m).
func simulateCone(v netlist.View, cg *coneGraph) []byte {
	k := len(cg.leaves)
	size := 1 << uint(k)
	tt := make([]byte, (size+7)/8)
	vals := map[netlist.NetID]logic.Value{}
	var inbuf []logic.Value
	for m := 0; m < size; m++ {
		for i, leaf := range cg.leaves {
			vals[leaf] = logic.FromBool(m>>uint(i)&1 == 1)
		}
		for gi, g := range cg.order {
			inbuf = inbuf[:0]
			for _, in := range cg.inputs[gi] {
				if vv, isConst := v.NetConst(in); isConst {
					inbuf = append(inbuf, vv)
					continue
				}
				inbuf = append(inbuf, vals[in])
			}
			vals[cg.outputs[gi]] = logic.Eval(cg.kinds[gi], inbuf)
			_ = g
		}
		if vals[cg.root] == logic.One {
			tt[m/8] |= 1 << uint(m%8)
		}
	}
	return tt
}

// canonicalize puts a truth table into NPN-lite canonical form: the output
// phase is normalized so that f(0,...,0) = 0, and inputs are reordered by a
// function-derived signature (influence, then cofactor weight), which makes
// the key invariant under input renaming whenever signatures are distinct.
// Symmetric inputs are already interchangeable, so ties are harmless there;
// genuinely ambiguous ties can make equal functions miss each other, which
// is conservative (no false matches).
func canonicalize(tt []byte, k int) []byte {
	size := 1 << uint(k)
	get := func(t []byte, m int) bool { return t[m/8]>>uint(m%8)&1 == 1 }
	set := func(t []byte, m int) { t[m/8] |= 1 << uint(m%8) }

	// Output phase.
	if get(tt, 0) {
		inv := make([]byte, len(tt))
		for m := 0; m < size; m++ {
			if !get(tt, m) {
				set(inv, m)
			}
		}
		tt = inv
	}

	// Input signatures.
	type sig struct {
		idx       int
		influence int
		cofOnes   int
	}
	sigs := make([]sig, k)
	for i := 0; i < k; i++ {
		s := sig{idx: i}
		bit := 1 << uint(i)
		for m := 0; m < size; m++ {
			if m&bit != 0 {
				if get(tt, m) {
					s.cofOnes++
				}
				continue
			}
			if get(tt, m) != get(tt, m|bit) {
				s.influence++
			}
		}
		sigs[i] = s
	}
	sort.Slice(sigs, func(a, b int) bool {
		if sigs[a].influence != sigs[b].influence {
			return sigs[a].influence > sigs[b].influence
		}
		if sigs[a].cofOnes != sigs[b].cofOnes {
			return sigs[a].cofOnes > sigs[b].cofOnes
		}
		return sigs[a].idx < sigs[b].idx
	})

	// Apply the permutation: new input j reads old input sigs[j].idx.
	out := make([]byte, len(tt))
	for m := 0; m < size; m++ {
		old := 0
		for j := 0; j < k; j++ {
			if m>>uint(j)&1 == 1 {
				old |= 1 << uint(sigs[j].idx)
			}
		}
		if get(tt, old) {
			set(out, m)
		}
	}
	return out
}
