package functional

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// muxBitNet builds one mux bit in the requested style over fresh inputs and
// returns (netlist, bit net).
func muxBitNet(t *testing.T, style synth.MuxStyle) (*netlist.Netlist, netlist.NetID) {
	t.Helper()
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 2}, {Name: "b", Width: 2}, {Name: "s", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 2,
			Next: rtl.Mux{Sel: rtl.Ref{Name: "s"}, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}}},
	}
	res, err := synth.Synthesize(d, synth.Options{MuxStyle: style})
	if err != nil {
		t.Fatal(err)
	}
	return res.NL, res.RegRoots["r"][0]
}

// TestMuxStylesFunctionallyEqual is the headline property: a MUX2 cell, the
// four-NAND decomposition, and the AOI form all canonicalize to the same
// function key — which no structural hash can achieve.
func TestMuxStylesFunctionallyEqual(t *testing.T) {
	keys := map[synth.MuxStyle]string{}
	for _, style := range []synth.MuxStyle{synth.MuxCell, synth.MuxNand, synth.MuxAoi} {
		nl, bit := muxBitNet(t, style)
		key, ok := CanonicalFunction(nl, bit, 4, 8)
		if !ok {
			t.Fatalf("style %d: no function", style)
		}
		keys[style] = key
	}
	if keys[synth.MuxCell] != keys[synth.MuxNand] || keys[synth.MuxCell] != keys[synth.MuxAoi] {
		t.Errorf("mux styles disagree: %q %q %q",
			keys[synth.MuxCell], keys[synth.MuxNand], keys[synth.MuxAoi])
	}
}

func TestDifferentFunctionsDiffer(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	z := nl.MustNet("z")
	nl.MustGate("g1", logic.And, x, a, b)
	nl.MustGate("g2", logic.Or, y, a, b)
	nl.MustGate("g3", logic.Nand, z, a, b) // = NOT(and): same NPN class as AND
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	kx, _ := CanonicalFunction(nl, x, 4, 8)
	ky, _ := CanonicalFunction(nl, y, 4, 8)
	kz, _ := CanonicalFunction(nl, z, 4, 8)
	if kx == ky {
		t.Error("AND and OR must differ (no input-negation canonicalization)")
	}
	// Output-phase canonicalization folds NAND onto AND.
	if kx != kz {
		t.Error("AND and NAND must share a key (output phase normalized)")
	}
}

// TestInputRenamingInvariance: the same function over different leaf nets
// (and with permuted gate input order) produces the same key.
func TestInputRenamingInvariance(t *testing.T) {
	build := func(names [3]string, swap bool) (string, bool) {
		nl := netlist.New("t")
		var pis []netlist.NetID
		for _, n := range names {
			id := nl.MustNet(n)
			nl.MarkPI(id)
			pis = append(pis, id)
		}
		x := nl.MustNet("x")
		if swap {
			nl.MustGate("g1", logic.And, x, pis[1], pis[0])
		} else {
			nl.MustGate("g1", logic.And, x, pis[0], pis[1])
		}
		y := nl.MustNet("y")
		nl.MustGate("g2", logic.Or, y, x, pis[2])
		return CanonicalFunction(nl, y, 4, 8)
	}
	k1, ok1 := build([3]string{"a", "b", "c"}, false)
	k2, ok2 := build([3]string{"p", "q", "r"}, true)
	if !ok1 || !ok2 {
		t.Fatal("no function")
	}
	if k1 != k2 {
		t.Errorf("renaming/permutation changed the key: %q vs %q", k1, k2)
	}
}

func TestSupportCap(t *testing.T) {
	nl := netlist.New("t")
	var ins []netlist.NetID
	for i := 0; i < 10; i++ {
		id := nl.MustNet("p" + string(rune('0'+i)))
		nl.MarkPI(id)
		ins = append(ins, id)
	}
	y := nl.MustNet("y")
	nl.MustGate("g", logic.And, y, ins...)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := CanonicalFunction(nl, y, 4, 8); ok {
		t.Error("support cap not enforced")
	}
	if _, ok := CanonicalFunction(nl, y, 4, 10); !ok {
		t.Error("wider cap rejected a legal cone")
	}
}

// TestReconvergenceExactness: the DAG evaluation is exact where tree
// unfolding would mis-handle shared nets: f = XOR(s, s) == 0 for all s.
func TestReconvergenceExactness(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	s := nl.MustNet("s")
	nl.MustGate("g1", logic.Not, s, a)
	y := nl.MustNet("y")
	nl.MustGate("g2", logic.Xor, y, s, s)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	key, ok := CanonicalFunction(nl, y, 4, 8)
	if !ok {
		t.Fatal("no function")
	}
	// Constant-zero over a 1-input support: all-zero truth table.
	zeroNl := netlist.New("z")
	p := zeroNl.MustNet("p")
	zeroNl.MarkPI(p)
	q := zeroNl.MustNet("q")
	zeroNl.MustGate("g", logic.Xor, q, p, p)
	key2, _ := CanonicalFunction(zeroNl, q, 4, 8)
	if key != key2 {
		t.Errorf("reconvergent constants disagree: %q vs %q", key, key2)
	}
}

// TestIdentifyMixedStyleWord: a word whose bits alternate mux
// implementations is invisible to structural full matching but grouped by
// the functional matcher.
func TestIdentifyMixedStyleWord(t *testing.T) {
	nl := netlist.New("t")
	s := nl.MustNet("s")
	nl.MarkPI(s)
	ns := nl.MustNet("ns")
	nl.MustGate("ginv", logic.Not, ns, s)
	type spec struct {
		kind logic.Kind
		ins  []netlist.NetID
	}
	var roots []spec
	for i := 0; i < 4; i++ {
		sfx := string(rune('0' + i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		b := nl.MustNet("b" + sfx)
		nl.MarkPI(b)
		if i%2 == 0 {
			// four-NAND mux; root NAND2
			t1 := nl.MustNet("t1" + sfx)
			nl.MustGate("gt1"+sfx, logic.Nand, t1, a, ns)
			t2 := nl.MustNet("t2" + sfx)
			nl.MustGate("gt2"+sfx, logic.Nand, t2, b, s)
			roots = append(roots, spec{logic.Nand, []netlist.NetID{t1, t2}})
		} else {
			// AOI form; also rooted in a 2-input NAND for adjacency:
			// y = NAND(NAND(a,ns), NAND(b,s)) vs NOT(AOI21(...)) differs
			// in root type, so use an equivalent NAND-rooted variant with
			// a different internal decomposition: NAND(NAND(ns,a), NAND(s,b))
			// with swapped pins plus an extra BUF inside.
			t1 := nl.MustNet("t1" + sfx)
			nl.MustGate("gt1"+sfx, logic.Nand, t1, ns, a)
			bb := nl.MustNet("bb" + sfx)
			nl.MustGate("gbb"+sfx, logic.Buf, bb, b)
			t2 := nl.MustNet("t2" + sfx)
			nl.MustGate("gt2"+sfx, logic.Nand, t2, s, bb)
			roots = append(roots, spec{logic.Nand, []netlist.NetID{t1, t2}})
		}
	}
	var bits []netlist.NetID
	for i, r := range roots {
		bit := nl.MustNet("bit" + string(rune('0'+i)))
		nl.MustGate("gb"+string(rune('0'+i)), r.kind, bit, r.ins...)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, Options{})
	found := false
	for _, w := range res.Words {
		if len(w) == 4 {
			set := map[netlist.NetID]bool{}
			for _, n := range w {
				set[n] = true
			}
			all := true
			for _, b := range bits {
				if !set[b] {
					all = false
				}
			}
			if all {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("mixed-style word not grouped functionally; words: %v", res.Words)
	}
}

// TestCanonicalizeRandomPermutationInvariance: for random functions with
// distinct input signatures, permuting inputs never changes the canonical
// key.
func TestCanonicalizeRandomPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 3 + rng.Intn(3)
		size := 1 << uint(k)
		tt := make([]byte, (size+7)/8)
		for m := 0; m < size; m++ {
			if rng.Intn(2) == 1 {
				tt[m/8] |= 1 << uint(m%8)
			}
		}
		base := canonicalize(append([]byte(nil), tt...), k)
		// Random input permutation of the original table.
		perm := rng.Perm(k)
		ptt := make([]byte, len(tt))
		for m := 0; m < size; m++ {
			old := 0
			for j := 0; j < k; j++ {
				if m>>uint(j)&1 == 1 {
					old |= 1 << uint(perm[j])
				}
			}
			if tt[old/8]>>uint(old%8)&1 == 1 {
				ptt[m/8] |= 1 << uint(m%8)
			}
		}
		got := canonicalize(ptt, k)
		if !unambiguousSignatures(tt, k) {
			continue // ties may legitimately differ
		}
		if string(base) != string(got) {
			t.Fatalf("trial %d: permutation changed the canonical form", trial)
		}
	}
}

// unambiguousSignatures reports whether the canonicalization signature is a
// total order for this function (no two inputs tie).
func unambiguousSignatures(tt []byte, k int) bool {
	size := 1 << uint(k)
	get := func(m int) bool { return tt[m/8]>>uint(m%8)&1 == 1 }
	type sig struct{ inf, cof int }
	seen := map[sig]bool{}
	for i := 0; i < k; i++ {
		var s sig
		bit := 1 << uint(i)
		for m := 0; m < size; m++ {
			if m&bit != 0 {
				if get(m) {
					s.cof++
				}
				continue
			}
			if get(m) != get(m|bit) {
				s.inf++
			}
		}
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}
