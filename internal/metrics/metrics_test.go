package metrics

import (
	"math"
	"testing"

	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
)

func ref(name string, bits ...netlist.NetID) refwords.Word {
	return refwords.Word{Name: name, Bits: bits}
}

func TestFullyFound(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3)}
	// A generated word may contain extra nets and still fully find.
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2, 3, 99}})
	if rep.FullyFound != 1 || rep.NotFound != 0 || rep.PartiallyFound != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.FullyFoundPct() != 100 {
		t.Errorf("pct %f", rep.FullyFoundPct())
	}
	if rep.Words[0].Outcome != FullyFound || rep.Words[0].Fragments != 1 {
		t.Errorf("word result: %+v", rep.Words[0])
	}
}

func TestNotFound(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3)}
	// Every bit in a different generated word.
	rep := Evaluate(refs, [][]netlist.NetID{{1}, {2}, {3}})
	if rep.NotFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// Bits not covered at all are also singletons.
	rep = Evaluate(refs, [][]netlist.NetID{{1}})
	if rep.NotFound != 1 {
		t.Fatalf("uncovered bits: %+v", rep)
	}
	if rep.NotFoundPct() != 100 {
		t.Errorf("pct %f", rep.NotFoundPct())
	}
}

// TestPaperFragmentationExample reproduces the paper's definition: "an
// 8-bit reference word split into two 4-bit generated words would be
// fragmented into two pieces", normalized by word size -> 2/8.
func TestPaperFragmentationExample(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3, 4, 5, 6, 7, 8)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if rep.PartiallyFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.FragmentationRate-0.25) > 1e-9 {
		t.Errorf("fragmentation %f, want 0.25", rep.FragmentationRate)
	}
	if rep.Words[0].Fragments != 2 {
		t.Errorf("fragments %d", rep.Words[0].Fragments)
	}
}

func TestPartialWithUncoveredBits(t *testing.T) {
	// 4-bit word: 2 bits grouped, 2 bits uncovered -> 3 fragments.
	refs := []refwords.Word{ref("w", 1, 2, 3, 4)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}})
	if rep.PartiallyFound != 1 || rep.Words[0].Fragments != 3 {
		t.Fatalf("report: %+v", rep.Words[0])
	}
	if math.Abs(rep.FragmentationRate-0.75) > 1e-9 {
		t.Errorf("frag %f", rep.FragmentationRate)
	}
}

func TestFragmentationAveragesOnlyPartial(t *testing.T) {
	refs := []refwords.Word{
		ref("full", 1, 2),
		ref("part", 3, 4, 5, 6),
		ref("none", 7, 8),
	}
	gen := [][]netlist.NetID{{1, 2}, {3, 4}, {5, 6}, {7}, {8}}
	rep := Evaluate(refs, gen)
	if rep.FullyFound != 1 || rep.PartiallyFound != 1 || rep.NotFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.FragmentationRate-0.5) > 1e-9 {
		t.Errorf("frag %f, want 0.5 (only the partial word)", rep.FragmentationRate)
	}
}

func TestZeroFragmentationConvention(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}})
	if rep.FragmentationRate != 0 {
		t.Errorf("no partial words must report 0 fragmentation")
	}
}

func TestFirstWordWinsOnOverlap(t *testing.T) {
	// A net claimed by two generated words belongs to the first.
	refs := []refwords.Word{ref("w", 1, 2)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}, {2, 99}})
	if rep.FullyFound != 1 {
		t.Fatalf("overlap handling: %+v", rep)
	}
}

func TestEmptyInputs(t *testing.T) {
	rep := Evaluate(nil, nil)
	if rep.RefWords != 0 || rep.FullyFoundPct() != 0 || rep.NotFoundPct() != 0 {
		t.Errorf("empty: %+v", rep)
	}
}

func TestOutcomeString(t *testing.T) {
	if FullyFound.String() != "fully-found" || PartiallyFound.String() != "partially-found" || NotFound.String() != "not-found" {
		t.Error("outcome strings")
	}
}

func TestTwoBitWordEdge(t *testing.T) {
	// For a 2-bit word the outcomes are binary: together = fully found,
	// apart = not found; "partial" is impossible.
	refs := []refwords.Word{ref("w", 1, 2)}
	if rep := Evaluate(refs, [][]netlist.NetID{{1, 2}}); rep.FullyFound != 1 {
		t.Error("together")
	}
	if rep := Evaluate(refs, [][]netlist.NetID{{1}, {2}}); rep.NotFound != 1 {
		t.Error("apart")
	}
}

func TestSortedOutcomesAndFormatRow(t *testing.T) {
	refs := []refwords.Word{ref("b", 1, 2), ref("a", 3, 4)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}, {3, 4}})
	sorted := rep.SortedOutcomes()
	if sorted[0].Ref.Name != "a" || sorted[1].Ref.Name != "b" {
		t.Error("not sorted")
	}
	if rep.FormatRow() == "" {
		t.Error("empty row")
	}
}
