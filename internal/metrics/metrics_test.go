package metrics

import (
	"math"
	"testing"

	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
)

func ref(name string, bits ...netlist.NetID) refwords.Word {
	return refwords.Word{Name: name, Bits: bits}
}

func TestFullyFound(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3)}
	// A generated word may contain extra nets and still fully find.
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2, 3, 99}})
	if rep.FullyFound != 1 || rep.NotFound != 0 || rep.PartiallyFound != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.FullyFoundPct() != 100 {
		t.Errorf("pct %f", rep.FullyFoundPct())
	}
	if rep.Words[0].Outcome != FullyFound || rep.Words[0].Fragments != 1 {
		t.Errorf("word result: %+v", rep.Words[0])
	}
}

func TestNotFound(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3)}
	// Every bit in a different generated word.
	rep := Evaluate(refs, [][]netlist.NetID{{1}, {2}, {3}})
	if rep.NotFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// Bits not covered at all are also singletons.
	rep = Evaluate(refs, [][]netlist.NetID{{1}})
	if rep.NotFound != 1 {
		t.Fatalf("uncovered bits: %+v", rep)
	}
	if rep.NotFoundPct() != 100 {
		t.Errorf("pct %f", rep.NotFoundPct())
	}
}

// TestPaperFragmentationExample reproduces the paper's definition: "an
// 8-bit reference word split into two 4-bit generated words would be
// fragmented into two pieces", normalized by word size -> 2/8.
func TestPaperFragmentationExample(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3, 4, 5, 6, 7, 8)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if rep.PartiallyFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.FragmentationRate-0.25) > 1e-9 {
		t.Errorf("fragmentation %f, want 0.25", rep.FragmentationRate)
	}
	if rep.Words[0].Fragments != 2 {
		t.Errorf("fragments %d", rep.Words[0].Fragments)
	}
}

func TestPartialWithUncoveredBits(t *testing.T) {
	// 4-bit word: 2 bits grouped, 2 bits uncovered -> 3 fragments.
	refs := []refwords.Word{ref("w", 1, 2, 3, 4)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}})
	if rep.PartiallyFound != 1 || rep.Words[0].Fragments != 3 {
		t.Fatalf("report: %+v", rep.Words[0])
	}
	if math.Abs(rep.FragmentationRate-0.75) > 1e-9 {
		t.Errorf("frag %f", rep.FragmentationRate)
	}
}

func TestFragmentationAveragesOnlyPartial(t *testing.T) {
	refs := []refwords.Word{
		ref("full", 1, 2),
		ref("part", 3, 4, 5, 6),
		ref("none", 7, 8),
	}
	gen := [][]netlist.NetID{{1, 2}, {3, 4}, {5, 6}, {7}, {8}}
	rep := Evaluate(refs, gen)
	if rep.FullyFound != 1 || rep.PartiallyFound != 1 || rep.NotFound != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.FragmentationRate-0.5) > 1e-9 {
		t.Errorf("frag %f, want 0.5 (only the partial word)", rep.FragmentationRate)
	}
}

func TestZeroFragmentationConvention(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}})
	if rep.FragmentationRate != 0 {
		t.Errorf("no partial words must report 0 fragmentation")
	}
}

func TestFirstWordWinsOnOverlap(t *testing.T) {
	// A net claimed by two generated words belongs to the first.
	refs := []refwords.Word{ref("w", 1, 2)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}, {2, 99}})
	if rep.FullyFound != 1 {
		t.Fatalf("overlap handling: %+v", rep)
	}
}

// TestScoreWordConvention pins the documented convention for the degenerate
// word sizes where the paper's two conditions ("fragments == 1" for fully
// found, "fragments == len(bits)" for not found) are not mutually exclusive.
func TestScoreWordConvention(t *testing.T) {
	cases := []struct {
		name string
		ref  refwords.Word
		gen  [][]netlist.NetID
		want Outcome
	}{
		// 0 bits: nothing to score, and fragments/len would divide by zero.
		{"empty word", ref("w"), [][]netlist.NetID{{1, 2}}, NotFound},
		// 1 bit: fully found iff a real generated word covers the bit.
		{"1-bit covered", ref("w", 1), [][]netlist.NetID{{1, 2}}, FullyFound},
		{"1-bit covered by singleton gen word", ref("w", 1), [][]netlist.NetID{{1}}, FullyFound},
		{"1-bit uncovered", ref("w", 1), [][]netlist.NetID{{2, 3}}, NotFound},
		{"1-bit no generated words", ref("w", 1), nil, NotFound},
		// >= 2 bits: the paper's conditions apply unchanged.
		{"2-bit together", ref("w", 1, 2), [][]netlist.NetID{{1, 2}}, FullyFound},
		{"2-bit apart", ref("w", 1, 2), [][]netlist.NetID{{1}, {2}}, NotFound},
		{"2-bit one covered one not", ref("w", 1, 2), [][]netlist.NetID{{1, 9}}, NotFound},
		{"3-bit partial", ref("w", 1, 2, 3), [][]netlist.NetID{{1, 2}}, PartiallyFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Evaluate([]refwords.Word{tc.ref}, tc.gen)
			if got := rep.Words[0].Outcome; got != tc.want {
				t.Fatalf("outcome = %v, want %v (result %+v)", got, tc.want, rep.Words[0])
			}
			// Degenerate sizes never contribute fragmentation — no NaN/Inf
			// and no poisoning of the aggregate rate.
			if f := rep.Words[0].Fragmentation; math.IsNaN(f) || math.IsInf(f, 0) {
				t.Errorf("fragmentation = %v", f)
			}
			if tc.want != PartiallyFound && rep.FragmentationRate != 0 {
				t.Errorf("fragmentation rate = %v, want 0", rep.FragmentationRate)
			}
		})
	}
}

// TestOverlapTieBreakIsFirstWins is the regression test for Evaluate's
// documented tie-break: a net claimed by several generated words belongs to
// the FIRST one in emission order, so reordering otherwise-identical
// generated words can legitimately change the score — and scoring must match
// the order given, not e.g. the largest or last claimant.
func TestOverlapTieBreakIsFirstWins(t *testing.T) {
	refs := []refwords.Word{ref("w", 1, 2, 3)}
	// {1,2,3} first: fully found, whatever follows.
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2, 3}, {1}, {2, 9}, {3, 8}})
	if rep.FullyFound != 1 {
		t.Fatalf("winner first: %+v", rep.Words[0])
	}
	// Same words with the singletons first: bits 1..3 are attributed to
	// three distinct earlier words, so the trailing {1,2,3} never owns them.
	rep = Evaluate(refs, [][]netlist.NetID{{1}, {2, 9}, {3, 8}, {1, 2, 3}})
	if rep.NotFound != 1 {
		t.Fatalf("winner last: %+v", rep.Words[0])
	}
	if rep.Words[0].Fragments != 3 {
		t.Errorf("fragments = %d, want 3 (one per claiming word)", rep.Words[0].Fragments)
	}
	// Partial overlap: {1,2} wins bits 1 and 2, {2,3} keeps only bit 3.
	rep = Evaluate(refs, [][]netlist.NetID{{1, 2}, {2, 3}})
	if rep.PartiallyFound != 1 || rep.Words[0].Fragments != 2 {
		t.Fatalf("partial overlap: %+v", rep.Words[0])
	}
}

func TestEmptyInputs(t *testing.T) {
	rep := Evaluate(nil, nil)
	if rep.RefWords != 0 || rep.FullyFoundPct() != 0 || rep.NotFoundPct() != 0 {
		t.Errorf("empty: %+v", rep)
	}
}

func TestOutcomeString(t *testing.T) {
	if FullyFound.String() != "fully-found" || PartiallyFound.String() != "partially-found" || NotFound.String() != "not-found" {
		t.Error("outcome strings")
	}
}

func TestTwoBitWordEdge(t *testing.T) {
	// For a 2-bit word the outcomes are binary: together = fully found,
	// apart = not found; "partial" is impossible.
	refs := []refwords.Word{ref("w", 1, 2)}
	if rep := Evaluate(refs, [][]netlist.NetID{{1, 2}}); rep.FullyFound != 1 {
		t.Error("together")
	}
	if rep := Evaluate(refs, [][]netlist.NetID{{1}, {2}}); rep.NotFound != 1 {
		t.Error("apart")
	}
}

func TestSortedOutcomesAndFormatRow(t *testing.T) {
	refs := []refwords.Word{ref("b", 1, 2), ref("a", 3, 4)}
	rep := Evaluate(refs, [][]netlist.NetID{{1, 2}, {3, 4}})
	sorted := rep.SortedOutcomes()
	if sorted[0].Ref.Name != "a" || sorted[1].Ref.Name != "b" {
		t.Error("not sorted")
	}
	if rep.FormatRow() == "" {
		t.Error("empty row")
	}
}
