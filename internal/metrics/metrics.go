// Package metrics implements the three evaluation metrics of DAC'15 §3:
// for each golden reference word, a word-identification technique's
// generated word set either fully finds it (some generated word contains
// every bit), does not find it (no generated word contains two or more of
// its bits), or partially finds it — in which case a normalized
// fragmentation rate measures how many generated words the reference word's
// bits are spread across.
package metrics

import (
	"fmt"
	"sort"

	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
)

// Outcome classifies one reference word against a generated word set.
type Outcome uint8

// Possible outcomes for a reference word.
const (
	FullyFound Outcome = iota
	PartiallyFound
	NotFound
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case FullyFound:
		return "fully-found"
	case PartiallyFound:
		return "partially-found"
	default:
		return "not-found"
	}
}

// WordResult is the per-reference-word evaluation detail.
type WordResult struct {
	Ref           refwords.Word
	Outcome       Outcome
	Fragments     int     // number of generated words the bits spread across
	Fragmentation float64 // Fragments normalized by word size (partial only)
}

// Report aggregates the evaluation of one technique on one benchmark.
type Report struct {
	RefWords       int
	FullyFound     int
	PartiallyFound int
	NotFound       int
	// FragmentationRate is the average of per-word normalized fragmentation
	// over partially-found words; 0 when there are none (matching the
	// paper's convention).
	FragmentationRate float64
	Words             []WordResult
}

// FullyFoundPct returns 100 * FullyFound / RefWords.
func (r Report) FullyFoundPct() float64 { return pct(r.FullyFound, r.RefWords) }

// NotFoundPct returns 100 * NotFound / RefWords.
func (r Report) NotFoundPct() float64 { return pct(r.NotFound, r.RefWords) }

// PartiallyFoundPct returns 100 * PartiallyFound / RefWords.
func (r Report) PartiallyFoundPct() float64 { return pct(r.PartiallyFound, r.RefWords) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Evaluate scores generated words against the reference words.
//
// Membership is by net: a bit of a reference word is "in" the generated word
// that contains that net. Bits not covered by any generated word are treated
// as singleton generated words of their own (a technique that says nothing
// about a net has implicitly left it ungrouped).
//
// A net appearing in more than one generated word is attributed to the FIRST
// generated word containing it, in emission order. This tie-break is
// deliberate, not incidental: emission order is the pipeline's confidence
// order (a subgroup's verified word is emitted before later, weaker
// regroupings touch the same nets), and scoring must not double-count a bit
// toward two words. Callers comparing techniques should emit their most
// trusted words first.
func Evaluate(refs []refwords.Word, generated [][]netlist.NetID) Report {
	wordOf := make(map[netlist.NetID]int)
	for wi, w := range generated {
		for _, n := range w {
			if _, dup := wordOf[n]; !dup {
				wordOf[n] = wi // first in emission order wins
			}
		}
	}
	rep := Report{RefWords: len(refs)}
	fragSum := 0.0
	for _, ref := range refs {
		res := scoreWord(ref, wordOf, len(generated))
		rep.Words = append(rep.Words, res)
		switch res.Outcome {
		case FullyFound:
			rep.FullyFound++
		case NotFound:
			rep.NotFound++
		default:
			rep.PartiallyFound++
			fragSum += res.Fragmentation
		}
	}
	if rep.PartiallyFound > 0 {
		rep.FragmentationRate = fragSum / float64(rep.PartiallyFound)
	}
	return rep
}

// scoreWord classifies one reference word. The paper defines the outcomes
// for words of two or more bits (the only kind its §3 evaluation extracts:
// reference registers have at least two bits), where the conditions
// "fragments == 1" (fully found) and "fragments == len(bits)" (not found)
// are mutually exclusive. The degenerate sizes need a convention, fixed and
// pinned here so the switch is unambiguous:
//
//   - 0 bits: NotFound. There is no evidence to score, and the paper's
//     fragmentation (fragments / word size) would divide by zero — an empty
//     word is reported as not found with zero fragmentation rather than
//     poisoning the aggregate rate with NaN.
//   - 1 bit: FullyFound exactly when the bit lies in a REAL generated word,
//     NotFound when no generated word covers it. For 1-bit words the two
//     paper conditions hold simultaneously; the discriminating question is
//     the paper's own "did the technique learn anything": a covered bit was
//     grouped by the technique, an uncovered bit (scored via a synthetic
//     singleton) was not.
func scoreWord(ref refwords.Word, wordOf map[netlist.NetID]int, nGenerated int) WordResult {
	counts := make(map[int]int) // generated word -> #ref bits inside
	fragments := 0
	covered := 0            // bits found in a real (non-synthetic) generated word
	singleton := nGenerated // synthetic IDs for uncovered bits
	for _, bit := range ref.Bits {
		gw, ok := wordOf[bit]
		if !ok {
			gw = singleton
			singleton++
		} else {
			covered++
		}
		if counts[gw] == 0 {
			fragments++
		}
		counts[gw]++
	}
	res := WordResult{Ref: ref, Fragments: fragments}
	switch {
	case len(ref.Bits) == 0:
		res.Outcome = NotFound
	case len(ref.Bits) == 1:
		if covered == 1 {
			res.Outcome = FullyFound
		} else {
			res.Outcome = NotFound
		}
	case fragments == 1:
		res.Outcome = FullyFound
	case fragments == len(ref.Bits):
		// Every bit landed in a distinct generated word: nothing learned.
		res.Outcome = NotFound
	default:
		res.Outcome = PartiallyFound
		res.Fragmentation = float64(fragments) / float64(len(ref.Bits))
	}
	return res
}

// FormatRow renders the Table-1 metric triple for human-readable reports.
func (r Report) FormatRow() string {
	return fmt.Sprintf("full %.1f%%  frag %.2f  notfound %.1f%%",
		r.FullyFoundPct(), r.FragmentationRate, r.NotFoundPct())
}

// SortedOutcomes returns the per-word results ordered by reference word
// name; useful for stable, diff-friendly report output.
func (r Report) SortedOutcomes() []WordResult {
	out := append([]WordResult(nil), r.Words...)
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.Name < out[j].Ref.Name })
	return out
}
