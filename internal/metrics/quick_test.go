package metrics

import (
	"math/rand"
	"testing"

	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
)

// TestEvaluateProperties checks invariants on random reference/generated
// word configurations: the three outcomes partition the reference set,
// percentages sum to 100, and fragmentation stays within (0, 1] for
// partially found words.
func TestEvaluateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nRefs := 1 + rng.Intn(6)
		var refs []refwords.Word
		next := netlist.NetID(0)
		for r := 0; r < nRefs; r++ {
			w := refwords.Word{Name: "w" + string(rune('0'+r))}
			width := 2 + rng.Intn(6)
			for b := 0; b < width; b++ {
				w.Bits = append(w.Bits, next)
				next++
			}
			refs = append(refs, w)
		}
		// Random generated partition over a random subset of the nets.
		var gen [][]netlist.NetID
		for n := netlist.NetID(0); n < next; n++ {
			if rng.Intn(5) == 0 {
				continue // uncovered bit
			}
			if len(gen) == 0 || rng.Intn(3) == 0 {
				gen = append(gen, nil)
			}
			gi := rng.Intn(len(gen))
			gen[gi] = append(gen[gi], n)
		}
		rep := Evaluate(refs, gen)
		if rep.FullyFound+rep.PartiallyFound+rep.NotFound != rep.RefWords {
			t.Fatalf("trial %d: outcomes do not partition: %+v", trial, rep)
		}
		sum := rep.FullyFoundPct() + rep.PartiallyFoundPct() + rep.NotFoundPct()
		if sum < 99.999 || sum > 100.001 {
			t.Fatalf("trial %d: percentages sum to %f", trial, sum)
		}
		for _, wr := range rep.Words {
			switch wr.Outcome {
			case FullyFound:
				if wr.Fragments != 1 {
					t.Fatalf("trial %d: fully found with %d fragments", trial, wr.Fragments)
				}
			case PartiallyFound:
				if wr.Fragmentation <= 0 || wr.Fragmentation > 1 {
					t.Fatalf("trial %d: fragmentation %f out of range", trial, wr.Fragmentation)
				}
				if wr.Fragments < 2 || wr.Fragments >= len(wr.Ref.Bits) {
					t.Fatalf("trial %d: partial with %d fragments of %d bits", trial, wr.Fragments, len(wr.Ref.Bits))
				}
			case NotFound:
				if wr.Fragments != len(wr.Ref.Bits) {
					t.Fatalf("trial %d: not-found with %d fragments of %d bits", trial, wr.Fragments, len(wr.Ref.Bits))
				}
			}
		}
	}
}
