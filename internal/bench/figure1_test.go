package bench

import (
	"testing"

	"gatewords/internal/core"
	"gatewords/internal/logic"
	"gatewords/internal/metrics"
	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
	"gatewords/internal/shapehash"
)

func TestFigure1DesignValidates(t *testing.T) {
	if err := Figure1Design().Validate(); err != nil {
		t.Fatalf("Figure1Design does not validate: %v", err)
	}
}

func TestFigure1Synthesizes(t *testing.T) {
	nl, bits, err := Figure1Circuit()
	if err != nil {
		t.Fatalf("Figure1Circuit: %v", err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	if len(bits) != 3 {
		t.Fatalf("want 3 word bits, got %d", len(bits))
	}
	refs := refwords.Extract(nl, refwords.Options{})
	if len(refs) != 2 {
		t.Fatalf("want 2 reference words (out, w2), got %d: %+v", len(refs), refs)
	}
}

// TestFigure1Base checks that shape hashing (the paper's "Base") only
// groups the two bits whose dissimilar subtrees share a structure, leaving
// the third bit apart: the word is partially found with fragmentation 2/3,
// matching the paper's walkthrough.
func TestFigure1Base(t *testing.T) {
	nl, _, err := Figure1Circuit()
	if err != nil {
		t.Fatalf("Figure1Circuit: %v", err)
	}
	refs := refwords.Extract(nl, refwords.Options{})
	res := shapehash.Identify(nl, 0)
	rep := metrics.Evaluate(refs, res.Words)
	var out metrics.WordResult
	for _, wr := range rep.Words {
		if wr.Ref.Name == "out_reg" {
			out = wr
		}
	}
	if out.Ref.Name != "out_reg" {
		t.Fatalf("reference word out_reg not evaluated; refs: %+v", refs)
	}
	if out.Outcome != metrics.PartiallyFound {
		t.Fatalf("Base on Figure 1: want partially-found, got %s (fragments %d)", out.Outcome, out.Fragments)
	}
	if out.Fragments != 2 {
		t.Errorf("Base fragments = %d, want 2 (bits 0,1 together; bit 2 apart)", out.Fragments)
	}
}

// TestFigure1Ours checks the full mechanism of the paper on its own
// example: the pipeline finds control signals U201 and U221 (pruning the
// dominated U223), verifies the 3-bit word under an assignment that sets a
// control signal to 0, and fully finds both reference words.
func TestFigure1Ours(t *testing.T) {
	nl, bits, err := Figure1Circuit()
	if err != nil {
		t.Fatalf("Figure1Circuit: %v", err)
	}
	refs := refwords.Extract(nl, refwords.Options{})
	res := core.Identify(nl, core.Options{CollectTrace: true})
	rep := metrics.Evaluate(refs, res.GeneratedWords())

	for _, wr := range rep.Words {
		if wr.Outcome != metrics.FullyFound {
			t.Errorf("word %s: want fully-found, got %s", wr.Ref.Name, wr.Outcome)
		}
	}

	// The word containing the 3 bits must be verified through a control
	// assignment that includes U201=0 or U221=0 on the decode nets.
	var word *core.Word
	for i := range res.Words {
		if containsAll(res.Words[i].Bits, bits) {
			word = &res.Words[i]
			break
		}
	}
	if word == nil {
		t.Fatalf("no generated word contains all 3 bits; words: %v; trace: %v", res.Words, res.Trace)
	}
	if !word.Verified {
		t.Errorf("word not verified; trace: %v", res.Trace)
	}
	if len(word.Controls) == 0 {
		t.Fatalf("no control signals recorded for the word; trace: %v", res.Trace)
	}
	for _, c := range word.Controls {
		if v := word.Assignment[c]; v != logic.Zero {
			t.Errorf("control %s assigned %s, want 0 (controlling value of the NANDs it feeds)", nl.NetName(c), v)
		}
	}

	// Found control signals must be exactly the decode nets u201/u221
	// (synthesized under U-names); the dominated u223 must be pruned.
	found := map[string]bool{}
	for _, c := range res.FoundControlSignals {
		found[nl.NetName(c)] = true
	}
	u201 := netNameOfWire(t, nl, "u201")
	u221 := netNameOfWire(t, nl, "u221")
	u223 := netNameOfWire(t, nl, "u223")
	if !found[u201] || !found[u221] {
		t.Errorf("control signals found %v; want both %s (u201) and %s (u221)", res.FoundControlSignals, u201, u221)
	}
	if found[u223] {
		t.Errorf("dominated net %s (u223) must be pruned from control signals", u223)
	}
}

// netNameOfWire resolves a figure-1 wire's synthesized net name by
// re-synthesizing the design and reading the wire table.
func netNameOfWire(t *testing.T, nl *netlist.Netlist, wire string) string {
	t.Helper()
	res := mustSynthFigure1(t)
	nets := res.WireNets[wire]
	if len(nets) != 1 {
		t.Fatalf("wire %q: got nets %v", wire, nets)
	}
	return res.NL.NetName(nets[0])
}

func containsAll(have, want []netlist.NetID) bool {
	set := make(map[netlist.NetID]bool, len(have))
	for _, n := range have {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			return false
		}
	}
	return true
}
