package bench

import (
	"testing"

	"gatewords/internal/core"
	"gatewords/internal/logic"
	"gatewords/internal/metrics"
	"gatewords/internal/refwords"
	"gatewords/internal/rtl"
	"gatewords/internal/shapehash"
	"gatewords/internal/synth"
)

// TestScanChainRobustness models the paper's motivating control-signal
// class: scan muxes inserted by the CAD flow in front of every flip-flop.
// Word identification must keep working — the scan mux adds one uniform
// level to every bit's cone, so words stay structurally coherent, and the
// identification quality survives.
func TestScanChainRobustness(t *testing.T) {
	d := &rtl.Design{
		Name: "scan",
		Inputs: []rtl.Signal{
			{Name: "a", Width: 6}, {Name: "b", Width: 6}, {Name: "en", Width: 1},
		},
		Regs: []*rtl.Reg{
			{Name: "u", Width: 6, Next: rtl.Mux{Sel: rtl.Ref{Name: "en"},
				A: rtl.Ref{Name: "u"}, B: rtl.Ref{Name: "a"}}},
			{Name: "v", Width: 6, Next: rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
		},
		Outputs: []rtl.Output{{Name: "o", Expr: rtl.RedOr{A: rtl.Ref{Name: "v"}}}},
	}
	for _, insertScan := range []bool{false, true} {
		res, err := synth.Synthesize(d, synth.Options{InsertScan: insertScan})
		if err != nil {
			t.Fatal(err)
		}
		refs := refwords.Extract(res.NL, refwords.Options{})
		if len(refs) != 2 {
			t.Fatalf("scan=%v: refs %d", insertScan, len(refs))
		}
		ours := core.Identify(res.NL, core.Options{})
		rep := metrics.Evaluate(refs, ours.GeneratedWords())
		if rep.FullyFound != 2 {
			t.Errorf("scan=%v: ours fully found %d/2 (%v)", insertScan, rep.FullyFound, rep.Words)
		}
		base := shapehash.Identify(res.NL, 0)
		brep := metrics.Evaluate(refs, base.Words)
		if brep.FullyFound != 2 {
			t.Errorf("scan=%v: base fully found %d/2", insertScan, brep.FullyFound)
		}
	}
}

// TestScanStyleNand checks the NAND-decomposed scan mux path as well.
func TestScanStyleNand(t *testing.T) {
	d := &rtl.Design{
		Name:   "scan2",
		Inputs: []rtl.Signal{{Name: "a", Width: 4}, {Name: "b", Width: 4}},
		Regs: []*rtl.Reg{
			{Name: "w", Width: 4, Next: rtl.Bin{Kind: logic.Nor, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
		},
	}
	res, err := synth.Synthesize(d, synth.Options{InsertScan: true, ScanStyle: synth.MuxNand})
	if err != nil {
		t.Fatal(err)
	}
	refs := refwords.Extract(res.NL, refwords.Options{})
	ours := core.Identify(res.NL, core.Options{})
	rep := metrics.Evaluate(refs, ours.GeneratedWords())
	if rep.FullyFound != 1 {
		t.Errorf("NAND scan style: %d/1 fully found", rep.FullyFound)
	}
}
