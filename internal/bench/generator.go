package bench

import (
	"fmt"
	"math/rand"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/refwords"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// WordClass selects the structural phenomenon a generated word exhibits.
// The classes map onto the behaviors discussed in the paper's evaluation:
// which technique finds the word, and through which mechanism.
type WordClass int

// Word classes. Expected outcomes ("Base" = shape hashing, "Ours" = the
// control-signal technique):
const (
	// ClassA: all bits structurally identical. Both techniques fully find.
	ClassA WordClass = iota
	// ClassB1: Figure-1 style — two similar subtrees per bit plus a
	// per-bit-divergent subtree that one shared control signal removes.
	// Base fragments it; Ours verifies it with a single assignment.
	ClassB1
	// ClassB2: like ClassB1 but the divergent subtrees require two
	// simultaneous assignments (the paper's pair case). Base sees two
	// fragments; Ours verifies with two control signals.
	ClassB2
	// ClassBP: bits share most of their structure but the divergent
	// subtrees have no common net, so no control signal exists. Ours
	// recovers the word through cohesive partial-match grouping (the
	// zero-control-signal improvements of rows b03/b04); Base fragments.
	ClassBP
	// ClassCP: a control word with a little symmetry: exactly two bits
	// partially match. Base finds nothing; Ours groups the pair, so the
	// word moves from not-found to partially-found with no control signal.
	ClassCP
	// ClassC2: like ClassCP but the pair's divergence is resolved by one
	// control signal, exercising reduction on control words.
	ClassC2
	// ClassCtr: a counter. The ripple-carry subtrees diverge per bit but
	// share the low carry net; assigning it kills the carry chain, turning
	// every root into a buffer. Base fragments heavily (truncation only
	// equalizes high bits); Ours verifies all bits except bit 0.
	ClassCtr
	// ClassC: a state register with per-bit-arbitrary logic. Neither
	// technique finds it (the paper's not-found class).
	ClassC
	// ClassD: a word synthesized in structurally distinct blocks. Both
	// techniques see one fragment per block (equal fragmentation).
	ClassD
	// ClassShift: a shift register; D inputs connect straight to other
	// flip-flops, so there are no cones to match. Not found by either.
	ClassShift
)

// String names the class.
func (c WordClass) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB1:
		return "B1"
	case ClassB2:
		return "B2"
	case ClassBP:
		return "BP"
	case ClassCP:
		return "CP"
	case ClassC2:
		return "C2"
	case ClassCtr:
		return "CTR"
	case ClassC:
		return "C"
	case ClassD:
		return "D"
	case ClassShift:
		return "SH"
	}
	return "?"
}

// WordSpec describes one register to generate.
type WordSpec struct {
	Width   int
	Class   WordClass
	Variant int // structural flavor within the class
	// Parts is the block count for ClassD (default 2); SharedPrefix is the
	// number of leading bits sharing a divergent-subtree shape for
	// ClassB1/ClassBP (default 2).
	Parts        int
	SharedPrefix int
}

// Profile describes one ITC99-analog benchmark.
type Profile struct {
	Name string
	// Base, when non-empty, names a Table-1 profile this one derives from:
	// Generate resolves it lazily, inheriting the base's words, flags,
	// targets, and seed while keeping this profile's Name and Scan. An
	// unknown base is an error from Generate, not a package-init panic.
	Base        string
	Words       []WordSpec
	Flags       int // single-bit registers (FFs outside any reference word)
	TargetGates int // filler is added until the gate count approaches this
	TargetNets  int // unused pad inputs are added to approach this
	Seed        int64
	// Scan threads a scan chain through every flip-flop (the CAD-inserted
	// control signals the paper's introduction lists). Extension profiles
	// (b08s, b13s) use it to measure robustness to scan insertion.
	Scan bool
}

// Generated is a generated benchmark with its golden reference.
type Generated struct {
	Profile Profile
	NL      *netlist.Netlist
	Refs    []refwords.Word

	rtl *rtl.Design // the word-level design NL was synthesized from
}

// Resynthesize re-maps the generated design's word-level RTL with a
// different synthesis recipe (mux mapping style, fanin cap, numbering seed),
// yielding a netlist functionally equivalent to NL but structurally
// different — raw material for equivalence-checker benchmarks, where the two
// mappings must be proved equal output by output. The profile's scan-chain
// setting is pinned: scan structure is part of the function. It returns an
// error when called on a Generated that was not produced by Generate (no
// retained RTL).
func (g *Generated) Resynthesize(opt synth.Options) (*netlist.Netlist, error) {
	if g.rtl == nil {
		return nil, fmt.Errorf("bench %s: no retained RTL to resynthesize", g.Profile.Name)
	}
	opt.InsertScan = g.Profile.Scan
	res, err := synth.Synthesize(g.rtl, opt)
	if err != nil {
		return nil, err
	}
	return res.NL, nil
}

// resolveBase expands a derived profile (Base != "") into a full one: the
// base's words, flags, targets, and seed with this profile's Name and Scan.
// Only Table-1 profiles can serve as bases, which keeps resolution one level
// deep by construction.
func (p Profile) resolveBase() (Profile, error) {
	for _, cand := range Profiles {
		if cand.Name == p.Base {
			cand.Name = p.Name
			cand.Scan = p.Scan
			return cand, nil
		}
	}
	return Profile{}, fmt.Errorf("bench %s: unknown base profile %q", p.Name, p.Base)
}

// Generate builds the benchmark deterministically from the profile seed.
func (p Profile) Generate() (*Generated, error) {
	if p.Base != "" {
		resolved, err := p.resolveBase()
		if err != nil {
			return nil, err
		}
		p = resolved
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(p.Seed)),
		d:    &rtl.Design{Name: p.Name},
		pool: map[int][]string{},
	}
	// A small shared set of 1-bit control inputs and data buses seeds the
	// source pool; later registers feed from earlier registers, keeping the
	// primary-input count realistic.
	for i := 0; i < nCtlPI; i++ {
		g.ctl = append(g.ctl, g.input(fmt.Sprintf("ctl%d", i), 1))
	}
	for wi, spec := range p.Words {
		name := fmt.Sprintf("w%02d", wi)
		if err := g.buildWord(name, spec); err != nil {
			return nil, fmt.Errorf("bench %s: word %s (%s): %w", p.Name, name, spec.Class, err)
		}
	}
	for fi := 0; fi < p.Flags; fi++ {
		g.buildFlag(fmt.Sprintf("f%02d", fi))
	}
	g.observeRegs()

	// Synthesize once to measure, then add filler and pad inputs to
	// approach the gate/net targets.
	sopt := synth.Options{InsertScan: p.Scan}
	res, err := synth.Synthesize(g.d, sopt)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 5; attempt++ {
		stats := res.NL.ComputeStats()
		have := stats.Gates + stats.DFFs
		if p.TargetGates <= have+8 {
			break
		}
		g.addFiller(p.TargetGates - have)
		res, err = synth.Synthesize(g.d, sopt)
		if err != nil {
			return nil, err
		}
	}
	if p.TargetNets > 0 {
		pad := p.TargetNets - res.NL.NetCount()
		if pad > 0 {
			g.d.Inputs = append(g.d.Inputs, rtl.Signal{Name: "pad", Width: pad})
			res, err = synth.Synthesize(g.d, sopt)
			if err != nil {
				return nil, err
			}
		}
	}
	refs := refwords.Extract(res.NL, refwords.Options{})
	return &Generated{Profile: p, NL: res.NL, Refs: refs, rtl: g.d}, nil
}

// nCtlPI is the number of shared primary-input control bits.
const nCtlPI = 8

// gen carries generation state.
type gen struct {
	rng  *rand.Rand
	d    *rtl.Design
	pool map[int][]string // width -> source signal names
	ctl  []string         // 1-bit control signal names
	wn   int              // wire-name counter
	fill int              // filler counter
	decN int              // decode-pair counter
}

func (g *gen) input(name string, width int) string {
	g.d.Inputs = append(g.d.Inputs, rtl.Signal{Name: name, Width: width})
	if width > 1 {
		g.pool[width] = append(g.pool[width], name)
	}
	return name
}

// src returns a source signal of the given width, preferring existing
// signals (register outputs and earlier buses) and creating a fresh input
// bus when none fits. fresh forces a new private input bus.
func (g *gen) src(width int, fresh bool) string {
	if !fresh {
		if cands := g.pool[width]; len(cands) > 0 {
			return cands[g.rng.Intn(len(cands))]
		}
	}
	name := fmt.Sprintf("d%d_%d", width, len(g.pool[width]))
	if fresh {
		name = fmt.Sprintf("p%d_%d_%d", width, len(g.d.Inputs), g.rng.Intn(1000))
	}
	return g.input(name, width)
}

// ctlSig returns a 1-bit control source (any control, including decodes).
func (g *gen) ctlSig() rtl.BitExpr {
	name := g.ctl[g.rng.Intn(len(g.ctl))]
	return rtl.Bit(name, 0)
}

// ctlPI returns a primary-input control bit. Word templates use it for
// their select/auxiliary signals so that one word's kill-decode never
// aliases another word's selects, which would entangle reduction trials.
func (g *gen) ctlPI() rtl.BitExpr {
	return rtl.Bit(g.ctl[g.rng.Intn(nCtlPI)], 0)
}

// decode creates a fresh shared decode wire (NAND of two primary-input
// controls), the kind of internally generated control signal the technique
// discovers. Decodes deliberately never feed other decodes: independent
// decode cones keep one word's control signal from dominating another's.
func (g *gen) decode() string {
	g.wn++
	name := fmt.Sprintf("dec%d", g.wn)
	// Enumerate distinct unordered control pairs so no two decode wires are
	// structurally identical over identical nets — gate-level CSE would
	// merge them into one net and words would share a control signal.
	i, j := 0, 1
	for n := g.decN; n > 0; n-- {
		j++
		if j >= nCtlPI {
			i++
			j = i + 1
		}
		if i >= nCtlPI-1 {
			i, j = 0, 1 // wrap; duplicates only after C(nCtlPI,2) decodes
		}
	}
	g.decN++
	g.d.Wires = append(g.d.Wires, rtl.Wire{
		Name:  name,
		Width: 1,
		Bits:  []rtl.BitExpr{rtl.B(logic.Nand, rtl.Bit(g.ctl[i], 0), rtl.Bit(g.ctl[j], 0))},
	})
	g.ctl = append(g.ctl, name)
	return name
}

// register appends a register and adds its output to the source pool.
func (g *gen) register(r *rtl.Reg) {
	g.d.Regs = append(g.d.Regs, r)
	if r.Width > 1 {
		g.pool[r.Width] = append(g.pool[r.Width], r.Name)
	}
}

// observeRegs gives every register an output cone so nothing is dead.
func (g *gen) observeRegs() {
	var parts []rtl.Expr
	for _, r := range g.d.Regs {
		parts = append(parts, rtl.RedOr{A: rtl.Ref{Name: r.Name}})
	}
	for len(parts) > 0 {
		n := len(parts)
		if n > 8 {
			n = 8
		}
		chunk := parts[:n]
		parts = parts[n:]
		name := fmt.Sprintf("obs%d", len(g.d.Outputs))
		g.d.Outputs = append(g.d.Outputs, rtl.Output{Name: name, Expr: rtl.RedOr{A: rtl.Concat{Parts: chunk}}})
	}
}

func (g *gen) buildWord(name string, spec WordSpec) error {
	if spec.Width < 2 {
		return fmt.Errorf("word width %d too small", spec.Width)
	}
	switch spec.Class {
	case ClassA:
		g.buildA(name, spec)
	case ClassB1:
		g.buildB1(name, spec)
	case ClassB2:
		g.buildB2(name, spec)
	case ClassBP:
		g.buildBP(name, spec)
	case ClassCP:
		g.buildCP(name, spec, false)
	case ClassC2:
		g.buildCP(name, spec, true)
	case ClassCtr:
		g.buildCtr(name, spec)
	case ClassC:
		g.buildC(name, spec)
	case ClassD:
		g.buildD(name, spec)
	case ClassShift:
		g.buildShift(name, spec)
	default:
		return fmt.Errorf("unknown class %d", spec.Class)
	}
	return nil
}

// buildA emits a word whose bits are structurally identical.
func (g *gen) buildA(name string, spec WordSpec) {
	w := spec.Width
	a, b := g.src(w, false), g.src(w, false)
	switch spec.Variant % 5 {
	case 0: // three-way NAND select, Figure-1 shape without divergence
		c := g.src(w, false)
		s1, s2, s3 := g.ctlSig(), g.ctlSig(), g.ctlSig()
		bits := make([]rtl.BitExpr, w)
		for i := range bits {
			bits[i] = rtl.B(logic.Nand,
				rtl.B(logic.Nand, rtl.Bit(a, i), s1),
				rtl.B(logic.Nand, rtl.Bit(b, i), s2),
				rtl.B(logic.Nand, rtl.Bit(c, i), s3),
			)
		}
		g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
	case 1: // NOR-flavored two-way select
		s1, s2 := g.ctlSig(), g.ctlSig()
		bits := make([]rtl.BitExpr, w)
		for i := range bits {
			bits[i] = rtl.B(logic.Nor,
				rtl.B(logic.Nor, rtl.Bit(a, i), s1),
				rtl.B(logic.Nor, rtl.Bit(b, i), s2),
			)
		}
		g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
	case 2: // word-level mux, MUX2 cells
		g.register(&rtl.Reg{Name: name, Width: w,
			Next: rtl.Mux{Sel: rtl.Ref{Name: g.ctlName()}, A: rtl.Ref{Name: a}, B: rtl.Ref{Name: b}}})
	case 3: // word-level XOR datapath
		g.register(&rtl.Reg{Name: name, Width: w,
			Next: rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: a}, B: rtl.Ref{Name: b}}})
	default: // enabled load, NAND-mapped mux
		g.wn++
		g.register(&rtl.Reg{Name: name, Width: w,
			Next: rtl.Mux{Sel: rtl.Ref{Name: g.ctlName()}, A: rtl.Ref{Name: name}, B: rtl.Ref{Name: a}}})
	}
}

// ctlName returns a 1-bit control signal name (for word-level Mux selects).
func (g *gen) ctlName() string { return g.ctl[g.rng.Intn(len(g.ctl))] }

// divergent returns the i'th divergent-subtree variant over data bit d,
// extra signal m, and kill-control k. Every variant is forced to constant 1
// when k = 0 (k always feeds a NAND/OAI input whose controlling value is 0).
func divergent(variant int, d, m, k rtl.BitExpr) rtl.BitExpr {
	switch variant % 4 {
	case 0:
		return rtl.B(logic.Nand, d, k)
	case 1:
		return rtl.B(logic.Nand, d, m, k)
	case 2:
		return rtl.B(logic.Nand, rtl.B(logic.Nand, d, m), k)
	default:
		return rtl.B(logic.Oai21, d, m, k)
	}
}

// buildB1 emits a Figure-1-style word: per-bit roots NAND3(similar,
// similar, divergent_i) where all divergent subtrees contain the shared
// decode signal k at a killing position.
func (g *gen) buildB1(name string, spec WordSpec) {
	w := spec.Width
	a, b, c := g.src(w, false), g.src(w, false), g.src(w, false)
	s1, s2 := g.ctlPI(), g.ctlPI()
	k := rtl.Bit(g.decode(), 0)
	m := g.ctlPI()
	prefix := spec.SharedPrefix
	if prefix <= 0 {
		prefix = 2
	}
	bits := make([]rtl.BitExpr, w)
	for i := range bits {
		variant := 0
		if i >= prefix {
			// The remaining bits cycle through distinct divergent shapes.
			variant = 1 + (i-prefix)%3
		}
		if i == w-1 && variant == 1 {
			// The last bit's divergent subtree is the gate emitted directly
			// before the word's root gates; variant 1 is a 3-input NAND
			// like the roots themselves and would merge into their
			// adjacency run, polluting the subgroup. Use another shape.
			variant = 2
		}
		bits[i] = rtl.B(logic.Nand,
			rtl.B(logic.Nand, rtl.Bit(a, i), s1),
			rtl.B(logic.Nand, rtl.Bit(b, i), s2),
			divergent(variant, rtl.Bit(c, i), m, k),
		)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildB2 emits a word whose two block halves need different control
// signals: half the divergent subtrees are killed only by k1=0, the other
// half only by k2=0; both signals appear in every divergent subtree, so the
// pair assignment resolves the whole word.
func (g *gen) buildB2(name string, spec WordSpec) {
	w := spec.Width
	a, b, c := g.src(w, false), g.src(w, false), g.src(w, false)
	s1, s2 := g.ctlPI(), g.ctlPI()
	k1 := rtl.Bit(g.decode(), 0)
	k2 := rtl.Bit(g.decode(), 0)
	bits := make([]rtl.BitExpr, w)
	for i := range bits {
		// The two halves must differ structurally (hash keys ignore net
		// identity, so mirrored NAND trees would collide): the low half is
		// killed only by k1=0 through a NAND, the high half only by k2=0
		// through an OAI21 — but both signals appear in every divergent
		// subtree, so both are identified as relevant.
		var z rtl.BitExpr
		if i < w/2 {
			z = rtl.B(logic.Nand, rtl.B(logic.Nand, rtl.Bit(c, i), k2), k1)
		} else {
			z = rtl.B(logic.Oai21, rtl.Bit(c, i), k1, k2)
		}
		bits[i] = rtl.B(logic.Nand,
			rtl.B(logic.Nand, rtl.Bit(a, i), s1),
			rtl.B(logic.Nand, rtl.Bit(b, i), s2),
			z,
		)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildBP emits a word recoverable only by cohesive partial grouping: the
// divergent subtrees share no net, so no control signal exists.
func (g *gen) buildBP(name string, spec WordSpec) {
	w := spec.Width
	a := g.src(w, false)
	u := g.src(w, true)
	v := g.src(w, true)
	ld := g.ctlSig()
	prefix := spec.SharedPrefix
	if prefix <= 0 {
		prefix = 2
	}
	kinds := []logic.Kind{logic.Nand, logic.And, logic.Or, logic.Nor, logic.Xor, logic.Xnor}
	bits := make([]rtl.BitExpr, w)
	for i := range bits {
		kind := kinds[0]
		if i >= prefix {
			kind = kinds[1+(i-prefix)%(len(kinds)-1)]
		}
		bits[i] = rtl.B(logic.Mux2, ld, rtl.Bit(a, i), rtl.B(kind, rtl.Bit(u, i), rtl.Bit(v, i)))
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildCP emits a control word with a little structural symmetry: the first
// SharedPrefix bits (default 2) share one subtree shape while their second
// subtrees diverge. Without a control (ClassCP) the divergent subtrees have
// no common net, so only cohesive partial grouping recovers the cluster;
// withCtl (ClassC2) plants a shared kill-control so reduction verifies it.
// The remaining bits carry per-bit arbitrary logic with distinct root types.
func (g *gen) buildCP(name string, spec WordSpec, withCtl bool) {
	w := spec.Width
	cluster := spec.SharedPrefix
	if cluster < 2 {
		cluster = 2
	}
	if cluster > w {
		cluster = w
	}
	x := g.src(w, true)
	y := g.src(w, true)
	bits := make([]rtl.BitExpr, w)
	var k, m rtl.BitExpr
	if withCtl {
		k = rtl.Bit(g.decode(), 0)
		m = g.ctlPI()
	}
	plainKinds := []logic.Kind{logic.And, logic.Xor, logic.Or, logic.Xnor}
	for i := 0; i < cluster; i++ {
		shared := rtl.B(logic.Nor, rtl.Bit(x, i), rtl.Bit(y, i))
		if withCtl {
			bits[i] = rtl.B(logic.Nand, shared, divergent(i%4, rtl.Bit(y, i), m, k))
		} else {
			bits[i] = rtl.B(logic.Nand, shared,
				rtl.B(plainKinds[i%len(plainKinds)], rtl.Bit(x, i), rtl.Bit(y, i)))
		}
	}
	roots := distinctRoots()
	for i := cluster; i < w; i++ {
		bits[i] = g.randomTree(roots[i%len(roots)], x, y, i)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildCtr emits a counter; variant 1 adds a word-level enable mux.
func (g *gen) buildCtr(name string, spec WordSpec) {
	next := rtl.Expr(rtl.Inc{A: rtl.Ref{Name: name}})
	if spec.Variant%2 == 1 {
		next = rtl.Mux{Sel: rtl.Ref{Name: g.ctlName()}, A: rtl.Ref{Name: name}, B: next}
	}
	g.register(&rtl.Reg{Name: name, Width: spec.Width, Next: next})
}

// rootType is a (kind, arity) pair used to keep ClassC bits in distinct
// adjacency runs.
type rootType struct {
	kind  logic.Kind
	arity int
}

func distinctRoots() []rootType {
	return []rootType{
		{logic.Nand, 2}, {logic.Nor, 2}, {logic.And, 2}, {logic.Or, 2},
		{logic.Xor, 2}, {logic.Xnor, 2}, {logic.Nand, 3}, {logic.Nor, 3},
		{logic.And, 3}, {logic.Or, 3}, {logic.Aoi21, 3}, {logic.Oai21, 3},
		{logic.Nand, 4}, {logic.Nor, 4}, {logic.And, 4}, {logic.Or, 4},
	}
}

// randomTree builds a small random expression with the given root type over
// bits of buses x and y; sub-shapes vary with the rng.
func (g *gen) randomTree(rt rootType, x, y string, bit int) rtl.BitExpr {
	leaf := func() rtl.BitExpr {
		if g.rng.Intn(2) == 0 {
			return rtl.Bit(x, bit)
		}
		return rtl.Bit(y, bit)
	}
	subKinds := []logic.Kind{logic.Nand, logic.Nor, logic.And, logic.Or, logic.Xor}
	sub := func() rtl.BitExpr {
		switch g.rng.Intn(3) {
		case 0:
			return leaf()
		case 1:
			return rtl.B(subKinds[g.rng.Intn(len(subKinds))], leaf(), g.ctlSig())
		default:
			return rtl.B(logic.Not, rtl.B(subKinds[g.rng.Intn(len(subKinds))], leaf(), leaf()))
		}
	}
	args := make([]rtl.BitExpr, rt.arity)
	for i := range args {
		args[i] = sub()
	}
	return rtl.BOp{Kind: rt.kind, Args: args}
}

// buildC emits a state register with per-bit arbitrary logic and distinct
// root types, so no two bits group.
func (g *gen) buildC(name string, spec WordSpec) {
	w := spec.Width
	x := g.src(w, true)
	y := g.src(w, true)
	roots := distinctRoots()
	g.rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
	bits := make([]rtl.BitExpr, w)
	for i := range bits {
		bits[i] = g.randomTree(roots[i%len(roots)], x, y, i)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildD emits a word mapped in structurally distinct blocks: every block
// has uniform bits but blocks differ in root type, so both techniques see
// one fragment per block.
func (g *gen) buildD(name string, spec WordSpec) {
	w := spec.Width
	parts := spec.Parts
	if parts < 2 {
		parts = 2
	}
	a, b := g.src(w, false), g.src(w, false)
	s1, s2 := g.ctlSig(), g.ctlSig()
	styles := []func(i int) rtl.BitExpr{
		func(i int) rtl.BitExpr {
			return rtl.B(logic.Nand, rtl.B(logic.Nand, rtl.Bit(a, i), s1), rtl.B(logic.Nand, rtl.Bit(b, i), s2))
		},
		func(i int) rtl.BitExpr {
			return rtl.B(logic.Nor, rtl.B(logic.Nor, rtl.Bit(a, i), s1), rtl.B(logic.Nor, rtl.Bit(b, i), s2))
		},
		func(i int) rtl.BitExpr {
			return rtl.B(logic.Nand, rtl.B(logic.Nand, rtl.Bit(a, i), s1), rtl.B(logic.Nand, rtl.Bit(b, i), s2), rtl.B(logic.Nand, s1, s2))
		},
		func(i int) rtl.BitExpr {
			return rtl.B(logic.Mux2, s1, rtl.Bit(a, i), rtl.Bit(b, i))
		},
	}
	bits := make([]rtl.BitExpr, w)
	for i := range bits {
		block := i * parts / w
		bits[i] = styles[block%len(styles)](i)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildShift emits a shift register: D inputs are direct connections, so
// there is no structure to match.
func (g *gen) buildShift(name string, spec WordSpec) {
	w := spec.Width
	si := g.src(1, true)
	bits := make([]rtl.BitExpr, w)
	bits[0] = rtl.Bit(si, 0)
	for i := 1; i < w; i++ {
		bits[i] = rtl.Bit(name, i-1)
	}
	g.register(&rtl.Reg{Name: name, Width: w, NextBits: bits})
}

// buildFlag emits a single-bit register (not a reference word).
func (g *gen) buildFlag(name string) {
	x := g.ctlSig()
	y := g.ctlSig()
	kinds := []logic.Kind{logic.Nand, logic.Nor, logic.Xor, logic.And, logic.Or}
	g.register(&rtl.Reg{Name: name, Width: 1,
		NextBits: []rtl.BitExpr{rtl.B(kinds[g.rng.Intn(len(kinds))], x, y)}})
}

// addFiller appends random combinational clouds totalling roughly n gates.
// Each cloud rotates its leaf pattern by the cloud index so that clouds over
// the same source buses stay structurally distinct and are not collapsed by
// the synthesizer's common-subexpression sharing.
func (g *gen) addFiller(n int) {
	kinds := []logic.Kind{logic.Nand, logic.Nor, logic.And, logic.Or, logic.Xor, logic.Xnor}
	for n > 0 {
		width := 16
		if n < 64 {
			width = 4
		}
		a := g.src(width, false)
		b := g.src(width, false)
		g.fill++
		off := g.fill % width
		name := fmt.Sprintf("fill%d", g.fill)
		bits := make([]rtl.BitExpr, width)
		for i := range bits {
			k1 := kinds[g.rng.Intn(len(kinds))]
			k2 := kinds[g.rng.Intn(len(kinds))]
			k3 := kinds[g.rng.Intn(len(kinds))]
			k4 := kinds[g.rng.Intn(len(kinds))]
			bits[i] = rtl.B(k1,
				rtl.B(k2, rtl.Bit(a, (i+off)%width), g.ctlSig()),
				rtl.B(k3, rtl.Bit(b, (i+2*off+1)%width),
					rtl.B(k4, rtl.Bit(a, (i+1)%width), rtl.Bit(b, (i+off+3)%width))),
			)
		}
		g.d.Wires = append(g.d.Wires, rtl.Wire{Name: name, Width: width, Bits: bits})
		g.d.Outputs = append(g.d.Outputs, rtl.Output{Name: name + "o", Expr: rtl.RedOr{A: rtl.Ref{Name: name}}})
		// Per filler cloud: ~4 gates per bit plus the reduction tree and
		// output buffers, minus expected sharing losses.
		n -= width*4 + width/2 + 2
	}
}
