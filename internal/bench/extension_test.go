package bench

import (
	"testing"

	"gatewords/internal/core"
)

// TestExtensionScanProfiles measures the scan-inserted variants: the scan
// mux adds one uniform level to every bit's cone, so identification quality
// must hold up (never worse than Base, and no collapse of fully-found
// words relative to the scan-free profile).
func TestExtensionScanProfiles(t *testing.T) {
	for _, p := range ExtensionProfiles {
		gen, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := gen.NL.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", p.Name, err)
		}
		// Scan nets exist.
		for _, n := range []string{"scan_en", "scan_in", "scan_out"} {
			if _, ok := gen.NL.NetByName(n); !ok {
				t.Errorf("%s: scan net %s missing", p.Name, n)
			}
		}
		row := Measure(gen, core.Options{})
		if row.Ours.FullyFound < row.Base.FullyFound {
			t.Errorf("%s: ours worse than base under scan", p.Name)
		}
		// Compare with the scan-free baseline profile.
		base := p
		base.Name = p.Name[:len(p.Name)-1] + "a"
		base.Scan = false
		genBase, err := base.Generate()
		if err != nil {
			t.Fatal(err)
		}
		rowBase := Measure(genBase, core.Options{})
		if row.Ours.FullyFound < rowBase.Ours.FullyFound-1 {
			t.Errorf("%s: scan insertion cost more than one word: %d vs %d",
				p.Name, row.Ours.FullyFound, rowBase.Ours.FullyFound)
		}
	}
}
