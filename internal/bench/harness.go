package bench

import (
	"fmt"
	"strings"
	"time"

	"gatewords/internal/core"
	"gatewords/internal/metrics"
	"gatewords/internal/obs"
	"gatewords/internal/shapehash"
)

// Row is one measured Table-1 row: both techniques evaluated against the
// benchmark's golden reference words.
type Row struct {
	Name     string
	Gates    int // combinational gates + flip-flops (the paper's "#gates")
	Nets     int
	FFs      int
	Words    int
	AvgSize  float64
	Base     metrics.Report
	Ours     metrics.Report
	BaseTime time.Duration
	OursTime time.Duration
	// CtrlUsed counts distinct control signals whose assignment produced
	// emitted words (the paper's "#Control Signals" column); CtrlFound
	// counts all relevant signals identified.
	CtrlUsed  int
	CtrlFound int
	// Obs holds the Ours run's per-stage observability (grouping, matching,
	// control-signal discovery, trial loop, verification). Always collected:
	// at harness granularity the recorder's cost is noise, and cmd/table1 -v
	// renders it as the per-stage breakdown column.
	Obs *obs.Recorder
}

// Run generates the profile and evaluates both techniques on it.
func Run(p Profile, opt core.Options) (Row, error) {
	gen, err := p.Generate()
	if err != nil {
		return Row{}, err
	}
	return Measure(gen, opt), nil
}

// Measure evaluates both techniques on an already generated benchmark.
func Measure(gen *Generated, opt core.Options) Row {
	stats := gen.NL.ComputeStats()
	row := Row{
		Name:  gen.Profile.Name,
		Gates: stats.Gates + stats.DFFs,
		Nets:  gen.NL.NetCount(),
		FFs:   stats.DFFs,
		Words: len(gen.Refs),
	}
	bits := 0
	for _, w := range gen.Refs {
		bits += w.Size()
	}
	if len(gen.Refs) > 0 {
		row.AvgSize = float64(bits) / float64(len(gen.Refs))
	}

	start := time.Now()
	base := shapehash.Identify(gen.NL, opt.Depth)
	row.BaseTime = time.Since(start)
	row.Base = metrics.Evaluate(gen.Refs, base.Words)

	oursOpt := opt
	if oursOpt.Observer == nil {
		oursOpt.Observer = obs.New()
	}
	row.Obs = oursOpt.Observer
	start = time.Now()
	ours := core.Identify(gen.NL, oursOpt)
	row.OursTime = time.Since(start)
	row.Ours = metrics.Evaluate(gen.Refs, ours.GeneratedWords())
	row.CtrlUsed = len(ours.UsedControlSignals)
	row.CtrlFound = len(ours.FoundControlSignals)
	return row
}

// RunAll measures every profile.
func RunAll(profiles []Profile, opt core.Options) ([]Row, error) {
	rows := make([]Row, 0, len(profiles))
	for _, p := range profiles {
		r, err := Run(p, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// FormatTable renders measured rows in the layout of the paper's Table 1.
// When withPaper is true each benchmark also gets a "paper" reference line.
func FormatTable(rows []Row, withPaper bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10s %10s %10s %9s %6s\n",
		"bench", "#gates", "#nets", "#FF", "#words", "avgsize",
		"technique", "full(%)", "frag", "notfnd(%)", "time(s)", "#ctrl")
	sb.WriteString(strings.Repeat("-", 118) + "\n")
	var avgBaseFull, avgOursFull, avgBaseFrag, avgOursFrag, avgBaseNF, avgOursNF float64
	var avgBaseTime, avgOursTime float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %8d %8d %6d %6d %8.2f | %-9s %10.1f %10.2f %10.1f %9.2f %6s\n",
			r.Name, r.Gates, r.Nets, r.FFs, r.Words, r.AvgSize,
			"Base", r.Base.FullyFoundPct(), r.Base.FragmentationRate, r.Base.NotFoundPct(),
			r.BaseTime.Seconds(), "0")
		fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10.1f %10.2f %10.1f %9.2f %6d\n",
			"", "", "", "", "", "",
			"Ours", r.Ours.FullyFoundPct(), r.Ours.FragmentationRate, r.Ours.NotFoundPct(),
			r.OursTime.Seconds(), r.CtrlUsed)
		if withPaper {
			if pr, ok := PaperRowFor(r.Name); ok {
				fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10.1f %10.2f %10.1f %9.2f %6s\n",
					"", "", "", "", "", "",
					"paperBase", pr.BaseFull, pr.BaseFrag, pr.BaseNF, pr.BaseTime, "0")
				fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10.1f %10.2f %10.1f %9.2f %6d\n",
					"", "", "", "", "", "",
					"paperOurs", pr.OursFull, pr.OursFrag, pr.OursNF, pr.OursTime, pr.CtrlSignals)
			}
		}
		avgBaseFull += r.Base.FullyFoundPct()
		avgOursFull += r.Ours.FullyFoundPct()
		avgBaseFrag += r.Base.FragmentationRate
		avgOursFrag += r.Ours.FragmentationRate
		avgBaseNF += r.Base.NotFoundPct()
		avgOursNF += r.Ours.NotFoundPct()
		avgBaseTime += r.BaseTime.Seconds()
		avgOursTime += r.OursTime.Seconds()
	}
	n := float64(len(rows))
	if n > 0 {
		sb.WriteString(strings.Repeat("-", 118) + "\n")
		fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10.2f %10.3f %10.2f %9.3f %6s\n",
			"avg", "", "", "", "", "", "Base", avgBaseFull/n, avgBaseFrag/n, avgBaseNF/n, avgBaseTime/n, "")
		fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10.2f %10.3f %10.2f %9.3f %6s\n",
			"", "", "", "", "", "", "Ours", avgOursFull/n, avgOursFrag/n, avgOursNF/n, avgOursTime/n, "")
		if withPaper {
			fmt.Fprintf(&sb, "%-6s %8s %8s %6s %6s %8s | %-9s %10s %10s %10s %9s %6s\n",
				"", "", "", "", "", "", "paper", "61.54/71.89", "0.38/0.21", "11.25/8.67", "0.02/19.8", "")
		}
	}
	return sb.String()
}

// ProfileByName finds a profile ("b03a" or "b03"), searching the Table-1
// profiles first and then the extension profiles ("b08s", ...).
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name || p.Name == name+"a" {
			return p, true
		}
	}
	for _, p := range ExtensionProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
