package bench

import (
	"testing"

	"gatewords/internal/core"
	"gatewords/internal/metrics"
	"gatewords/internal/shapehash"
)

// runSingleWord generates a profile with a single word of the given spec
// and returns the per-word outcome under both techniques plus the pipeline
// result for control-signal assertions.
func runSingleWord(t *testing.T, spec WordSpec, seed int64) (base, ours metrics.WordResult, res *core.Result) {
	t.Helper()
	p := Profile{Name: "one", Seed: seed, Words: []WordSpec{spec}}
	gen, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Refs) != 1 {
		t.Fatalf("want 1 reference word, got %d", len(gen.Refs))
	}
	b := shapehash.Identify(gen.NL, 0)
	base = metrics.Evaluate(gen.Refs, b.Words).Words[0]
	res = core.Identify(gen.NL, core.Options{})
	ours = metrics.Evaluate(gen.Refs, res.GeneratedWords()).Words[0]
	return base, ours, res
}

func TestClassA(t *testing.T) {
	for variant := 0; variant < 5; variant++ {
		base, ours, _ := runSingleWord(t, WordSpec{Width: 6, Class: ClassA, Variant: variant}, int64(variant)+1)
		if base.Outcome != metrics.FullyFound {
			t.Errorf("variant %d: base %s", variant, base.Outcome)
		}
		if ours.Outcome != metrics.FullyFound {
			t.Errorf("variant %d: ours %s", variant, ours.Outcome)
		}
	}
}

func TestClassB1(t *testing.T) {
	base, ours, res := runSingleWord(t, WordSpec{Width: 6, Class: ClassB1, SharedPrefix: 3}, 2)
	if base.Outcome != metrics.PartiallyFound {
		t.Errorf("base %s, want partially-found", base.Outcome)
	}
	if ours.Outcome != metrics.FullyFound {
		t.Errorf("ours %s, want fully-found", ours.Outcome)
	}
	if len(res.UsedControlSignals) != 1 {
		t.Errorf("used control signals = %d, want 1", len(res.UsedControlSignals))
	}
}

func TestClassB2NeedsPair(t *testing.T) {
	base, ours, res := runSingleWord(t, WordSpec{Width: 6, Class: ClassB2}, 3)
	if base.Outcome != metrics.PartiallyFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.FullyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
	if len(res.UsedControlSignals) != 2 {
		t.Errorf("used control signals = %d, want the pair", len(res.UsedControlSignals))
	}
	// With MaxAssign=1 and no cohesion rescue the word must not verify.
	p := Profile{Name: "one", Seed: 3, Words: []WordSpec{{Width: 6, Class: ClassB2}}}
	gen, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r1 := core.Identify(gen.NL, core.Options{MaxAssign: 1, NoPartialGroups: true})
	ev := metrics.Evaluate(gen.Refs, r1.GeneratedWords())
	if ev.Words[0].Outcome == metrics.FullyFound {
		t.Error("pair-requiring word fully found with MaxAssign=1 and no cohesion")
	}
}

func TestClassBP(t *testing.T) {
	base, ours, res := runSingleWord(t, WordSpec{Width: 4, Class: ClassBP, SharedPrefix: 2}, 4)
	if base.Outcome != metrics.PartiallyFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.FullyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
	if len(res.UsedControlSignals) != 0 {
		t.Errorf("cohesion-only class must use no control signals, used %d", len(res.UsedControlSignals))
	}
}

func TestClassBPPrefix1IsBaseNotFound(t *testing.T) {
	base, ours, _ := runSingleWord(t, WordSpec{Width: 3, Class: ClassBP, SharedPrefix: 1}, 5)
	if base.Outcome != metrics.NotFound {
		t.Errorf("base %s, want not-found", base.Outcome)
	}
	if ours.Outcome != metrics.FullyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
}

func TestClassCP(t *testing.T) {
	base, ours, _ := runSingleWord(t, WordSpec{Width: 5, Class: ClassCP}, 6)
	if base.Outcome != metrics.NotFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.PartiallyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
}

func TestClassC2(t *testing.T) {
	base, ours, res := runSingleWord(t, WordSpec{Width: 5, Class: ClassC2}, 7)
	if base.Outcome != metrics.NotFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.PartiallyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
	if len(res.UsedControlSignals) != 1 {
		t.Errorf("used = %d, want 1", len(res.UsedControlSignals))
	}
}

func TestClassCtr(t *testing.T) {
	base, ours, res := runSingleWord(t, WordSpec{Width: 6, Class: ClassCtr}, 8)
	if base.Outcome != metrics.PartiallyFound && base.Outcome != metrics.NotFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.PartiallyFound {
		t.Errorf("ours %s (expected all bits except bit 0 grouped)", ours.Outcome)
	}
	if ours.Fragments != 2 {
		t.Errorf("ours fragments = %d, want 2", ours.Fragments)
	}
	if base.Outcome == metrics.PartiallyFound && base.Fragments <= ours.Fragments {
		t.Errorf("counter: base fragments %d must exceed ours %d", base.Fragments, ours.Fragments)
	}
	_ = res
}

func TestClassShortCtrUsesControl(t *testing.T) {
	// A 5-bit counter's carry chain fits the cone window, so the shared
	// low carry is discovered and the word verifies via reduction.
	_, ours, res := runSingleWord(t, WordSpec{Width: 5, Class: ClassCtr}, 9)
	if ours.Outcome != metrics.PartiallyFound {
		t.Errorf("ours %s", ours.Outcome)
	}
	if len(res.UsedControlSignals) != 1 {
		t.Errorf("short counter: used control signals = %d, want 1 (the carry root)",
			len(res.UsedControlSignals))
	}
}

func TestClassC(t *testing.T) {
	base, ours, _ := runSingleWord(t, WordSpec{Width: 6, Class: ClassC}, 10)
	if base.Outcome != metrics.NotFound {
		t.Errorf("base %s", base.Outcome)
	}
	if ours.Outcome != metrics.NotFound {
		t.Errorf("ours %s", ours.Outcome)
	}
}

func TestClassD(t *testing.T) {
	base, ours, _ := runSingleWord(t, WordSpec{Width: 6, Class: ClassD, Parts: 3}, 11)
	if base.Outcome != metrics.PartiallyFound || base.Fragments != 3 {
		t.Errorf("base %s/%d", base.Outcome, base.Fragments)
	}
	if ours.Outcome != metrics.PartiallyFound || ours.Fragments != 3 {
		t.Errorf("ours %s/%d (block-mapped words fragment equally)", ours.Outcome, ours.Fragments)
	}
}

func TestClassShift(t *testing.T) {
	base, ours, _ := runSingleWord(t, WordSpec{Width: 5, Class: ClassShift}, 12)
	if base.Outcome != metrics.NotFound || ours.Outcome != metrics.NotFound {
		t.Errorf("shift register: base %s ours %s", base.Outcome, ours.Outcome)
	}
}
