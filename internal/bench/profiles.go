package bench

// Profiles are the ITC99-analog benchmarks, one per row of DAC'15 Table 1.
// Word counts, average word sizes, flip-flop counts, and gate/net totals
// are matched to the table's benchmark columns; the word-class mixes are
// chosen so the structural phenomena (and therefore the Base/Ours
// comparison) mirror each row. PaperRows records the paper's numbers for
// side-by-side reporting in EXPERIMENTS.md and cmd/table1.
var Profiles = []Profile{
	{
		// b03: 7 words. Base finds 5 fully and fragments one 3-bit word
		// (0.67); Ours recovers that word with zero control signals (the
		// cohesive-partial-grouping case). One state word stays unfound.
		Name: "b03a", Seed: 3,
		Words: []WordSpec{
			{Width: 3, Class: ClassA, Variant: 0},
			{Width: 3, Class: ClassA, Variant: 1},
			{Width: 3, Class: ClassA, Variant: 2},
			{Width: 3, Class: ClassA, Variant: 3},
			{Width: 4, Class: ClassA, Variant: 4},
			{Width: 3, Class: ClassBP},
			{Width: 3, Class: ClassC},
		},
		Flags: 8, TargetGates: 122, TargetNets: 156,
	},
	{
		// b04: 9 words; one 4-bit word is recovered by cohesion (paper:
		// +1 full word, fragmentation 0.50 -> 0, zero control signals).
		Name: "b04a", Seed: 4,
		Words: []WordSpec{
			{Width: 8, Class: ClassA, Variant: 0},
			{Width: 8, Class: ClassA, Variant: 1},
			{Width: 8, Class: ClassA, Variant: 2},
			{Width: 8, Class: ClassA, Variant: 3},
			{Width: 8, Class: ClassA, Variant: 4},
			{Width: 7, Class: ClassA, Variant: 0},
			{Width: 7, Class: ClassA, Variant: 2},
			{Width: 4, Class: ClassBP, SharedPrefix: 3},
			{Width: 8, Class: ClassC},
		},
		Flags: 0, TargetGates: 652, TargetNets: 729,
	},
	{
		// b05: both techniques identical (4 full, 1 not found).
		Name: "b05a", Seed: 5,
		Words: []WordSpec{
			{Width: 7, Class: ClassA, Variant: 0},
			{Width: 7, Class: ClassA, Variant: 1},
			{Width: 6, Class: ClassA, Variant: 2},
			{Width: 6, Class: ClassA, Variant: 3},
			{Width: 5, Class: ClassC},
		},
		Flags: 3, TargetGates: 927, TargetNets: 962,
	},
	{
		// b07: both techniques report the same full/not-found counts;
		// the partially found words are a counter (Ours improves its
		// fragmentation using one control signal) and a block-mapped word
		// (equal fragmentation for both).
		Name: "b07a", Seed: 7,
		Words: []WordSpec{
			{Width: 8, Class: ClassA, Variant: 0},
			{Width: 8, Class: ClassA, Variant: 1},
			{Width: 8, Class: ClassA, Variant: 2},
			{Width: 7, Class: ClassA, Variant: 4},
			{Width: 6, Class: ClassCtr},
			{Width: 6, Class: ClassD, Parts: 2},
			{Width: 6, Class: ClassC},
		},
		Flags: 0, TargetGates: 383, TargetNets: 433,
	},
	{
		// b08: the headline control-signal row at small scale: one word
		// needs a single assignment, one needs a pair (3 signals total,
		// 40% -> 80% full).
		Name: "b08a", Seed: 8,
		Words: []WordSpec{
			{Width: 4, Class: ClassA, Variant: 0},
			{Width: 4, Class: ClassA, Variant: 2},
			{Width: 5, Class: ClassB1, SharedPrefix: 3},
			{Width: 4, Class: ClassB2},
			{Width: 4, Class: ClassC},
		},
		Flags: 0, TargetGates: 149, TargetNets: 179,
	},
	{
		// b11: no control-signal opportunities; both techniques tie with
		// two block-fragmented words (no not-found words at all).
		Name: "b11a", Seed: 11,
		Words: []WordSpec{
			{Width: 6, Class: ClassA, Variant: 0},
			{Width: 6, Class: ClassA, Variant: 1},
			{Width: 6, Class: ClassA, Variant: 3},
			{Width: 6, Class: ClassD, Parts: 3},
			{Width: 7, Class: ClassD, Parts: 4, Variant: 1},
		},
		Flags: 0, TargetGates: 726, TargetNets: 764,
	},
	{
		// b12: many small words; control signals recover four words (two
		// single-assignment, two pair-assignment) and improve one control
		// word, echoing the paper's 7-signal count.
		Name: "b12a", Seed: 12,
		Words: append(
			repeatSpec(29, WordSpec{Width: 2, Class: ClassA}, true,
				repeatSpec(7, WordSpec{Width: 3, Class: ClassA}, true, nil)),
			WordSpec{Width: 3, Class: ClassB1, SharedPrefix: 2},
			WordSpec{Width: 3, Class: ClassB1, SharedPrefix: 2, Variant: 1},
			WordSpec{Width: 3, Class: ClassB2},
			WordSpec{Width: 3, Class: ClassB2, Variant: 1},
			WordSpec{Width: 6, Class: ClassD, Parts: 2},
			WordSpec{Width: 6, Class: ClassD, Parts: 2, Variant: 1},
			WordSpec{Width: 3, Class: ClassBP, SharedPrefix: 1},
			WordSpec{Width: 3, Class: ClassBP, SharedPrefix: 1, Variant: 1},
			WordSpec{Width: 3, Class: ClassC},
			WordSpec{Width: 3, Class: ClassC, Variant: 1},
		),
		Flags: 6, TargetGates: 944, TargetNets: 1070,
	},
	{
		// b13: heavy fragmentation for Base (0.75) with Ours recovering
		// one word through a control signal and one pair of control-word
		// bits (2 signals).
		Name: "b13a", Seed: 13,
		Words: []WordSpec{
			{Width: 6, Class: ClassA, Variant: 0},
			{Width: 5, Class: ClassA, Variant: 2},
			{Width: 5, Class: ClassB1, SharedPrefix: 2},
			{Width: 4, Class: ClassC2},
			{Width: 5, Class: ClassD, Parts: 3},
			{Width: 5, Class: ClassD, Parts: 3, Variant: 1},
			{Width: 7, Class: ClassC},
		},
		Flags: 16, TargetGates: 289, TargetNets: 352,
	},
	{
		// b14: few, very wide words (avg 30 bits). Two counters improve
		// from 5-way to 2-way fragmentation; one wide word needs a pair
		// of control signals (4 signals total).
		Name: "b14a", Seed: 14,
		Words: []WordSpec{
			{Width: 30, Class: ClassA, Variant: 0},
			{Width: 30, Class: ClassA, Variant: 1},
			{Width: 30, Class: ClassA, Variant: 2},
			{Width: 31, Class: ClassA, Variant: 3},
			{Width: 30, Class: ClassB2},
			{Width: 30, Class: ClassCtr},
			{Width: 30, Class: ClassCtr, Variant: 0},
			{Width: 30, Class: ClassD, Parts: 2},
		},
		Flags: 4, TargetGates: 9767, TargetNets: 10044,
	},
	{
		// b15: the paper's cleanest control-signal story: four signals,
		// each recovering one complete word (22 -> 26 full), and the two
		// baseline not-found words gain partial groupings under Ours.
		Name: "b15a", Seed: 15,
		Words: append(
			repeatSpec(22, WordSpec{Width: 13, Class: ClassA}, true, nil),
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10},
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10, Variant: 1},
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10, Variant: 2},
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10, Variant: 3},
			WordSpec{Width: 3, Class: ClassCP},
			WordSpec{Width: 3, Class: ClassCP, Variant: 1},
			WordSpec{Width: 22, Class: ClassD, Parts: 2},
			WordSpec{Width: 22, Class: ClassD, Parts: 2, Variant: 1},
			WordSpec{Width: 22, Class: ClassD, Parts: 3},
			WordSpec{Width: 22, Class: ClassD, Parts: 3, Variant: 1},
		),
		Flags: 13, TargetGates: 8367, TargetNets: 8852,
	},
	{
		// b17: three b15-like cores plus additional counters and control
		// words; Ours leaves a single word unfound.
		Name: "b17a", Seed: 17,
		Words: append(
			repeatSpec(68, WordSpec{Width: 14, Class: ClassA}, true,
				repeatSpec(13, WordSpec{Width: 14, Class: ClassD, Parts: 3}, true,
					repeatSpec(6, WordSpec{Width: 14, Class: ClassCtr}, false, nil))),
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10},
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10, Variant: 1},
			WordSpec{Width: 14, Class: ClassB1, SharedPrefix: 10, Variant: 2},
			WordSpec{Width: 14, Class: ClassB2},
			WordSpec{Width: 14, Class: ClassB2, Variant: 1},
			WordSpec{Width: 4, Class: ClassC2, SharedPrefix: 3},
			WordSpec{Width: 4, Class: ClassC2, SharedPrefix: 3, Variant: 1},
			WordSpec{Width: 4, Class: ClassC2, SharedPrefix: 3, Variant: 2},
			WordSpec{Width: 4, Class: ClassC2, SharedPrefix: 3, Variant: 3},
			WordSpec{Width: 4, Class: ClassC2, SharedPrefix: 3, Variant: 4},
			WordSpec{Width: 14, Class: ClassC},
		),
		Flags: 93, TargetGates: 30777, TargetNets: 32229,
	},
	{
		// b18: the largest benchmark; twelve words recovered through
		// control signals (six singles, six pairs) plus ten counters,
		// echoing the paper's 36-signal, +12-word row.
		Name: "b18a", Seed: 18,
		Words: append(
			repeatSpec(112, WordSpec{Width: 15, Class: ClassA}, true,
				repeatSpec(66, WordSpec{Width: 15, Class: ClassD, Parts: 3}, true,
					repeatSpec(10, WordSpec{Width: 15, Class: ClassCtr}, false,
						repeatSpec(10, WordSpec{Width: 10, Class: ClassC}, true, nil)))),
			repeatSpec(6, WordSpec{Width: 15, Class: ClassB1, SharedPrefix: 11}, true,
				repeatSpec(6, WordSpec{Width: 15, Class: ClassB2}, true,
					repeatSpec(2, WordSpec{Width: 5, Class: ClassC2, SharedPrefix: 3}, true, nil)))...,
		),
		Flags: 210, TargetGates: 111241, TargetNets: 114589,
	},
}

// ExtensionProfiles are beyond-the-paper workloads: scan-chain variants of
// two table rows, measuring robustness to the very control signals (scan
// muxes) the paper's introduction motivates. They are not part of Table 1.
var ExtensionProfiles = []Profile{
	scanVariant("b08s", "b08a"),
	scanVariant("b13s", "b13a"),
}

// scanVariant declares a scan-insertion clone of a Table-1 profile. The
// base profile is resolved lazily by Generate — not here at package init —
// so a misspelled base name surfaces as an error from Generate (and from
// GenerateBenchmark) instead of a panic before main runs.
func scanVariant(name, base string) Profile {
	// Scan muxes add roughly one gate per flip-flop; the resolved profile
	// keeps the base's targets and lets the totals drift upward, as scan
	// insertion does.
	return Profile{Name: name, Base: base, Scan: true}
}

// repeatSpec appends n copies of spec (cycling Variant when vary is true) to
// tail and returns the combined slice; it keeps the profile table readable.
func repeatSpec(n int, spec WordSpec, vary bool, tail []WordSpec) []WordSpec {
	out := make([]WordSpec, 0, n+len(tail))
	for i := 0; i < n; i++ {
		s := spec
		if vary {
			s.Variant = i
		}
		out = append(out, s)
	}
	return append(out, tail...)
}

// PaperRow holds the published Table-1 numbers for one benchmark.
type PaperRow struct {
	Name               string
	Gates, Nets, FFs   int
	Words              int
	AvgSize            float64
	BaseFull, OursFull float64 // % of reference words fully found
	BaseFrag, OursFrag float64 // average normalized fragmentation
	BaseNF, OursNF     float64 // % not found
	BaseTime, OursTime float64 // seconds
	CtrlSignals        int
}

// PaperRows is DAC'15 Table 1 verbatim.
var PaperRows = []PaperRow{
	{"b03", 122, 156, 30, 7, 3.14, 71.4, 85.7, 0.67, 0.00, 14.3, 14.3, 0.00, 0.01, 0},
	{"b04", 652, 729, 66, 9, 7.33, 77.8, 88.9, 0.50, 0.00, 11.1, 11.1, 0.01, 0.01, 0},
	{"b05", 927, 962, 34, 5, 6.20, 80.0, 80.0, 0.00, 0.00, 20.0, 20.0, 0.00, 0.03, 0},
	{"b07", 383, 433, 49, 7, 7.00, 57.1, 57.1, 0.33, 0.33, 14.3, 14.3, 0.00, 0.00, 1},
	{"b08", 149, 179, 21, 5, 4.20, 40.0, 80.0, 0.58, 0.00, 20.0, 20.0, 0.00, 0.01, 3},
	{"b11", 726, 764, 31, 5, 6.20, 60.0, 60.0, 0.54, 0.54, 0.0, 0.0, 0.00, 0.01, 0},
	{"b12", 944, 1070, 121, 46, 2.52, 82.6, 91.3, 0.50, 0.30, 8.7, 4.3, 0.01, 0.09, 7},
	{"b13", 289, 352, 53, 7, 5.29, 28.6, 42.9, 0.75, 0.60, 28.6, 14.3, 0.00, 0.02, 2},
	{"b14", 9767, 10044, 245, 8, 30.13, 50.0, 62.5, 0.13, 0.08, 0.0, 0.0, 0.01, 0.65, 4},
	{"b15", 8367, 8852, 449, 32, 13.69, 68.8, 81.3, 0.19, 0.24, 6.3, 0.0, 0.01, 0.31, 4},
	{"b17", 30777, 32229, 1415, 98, 14.06, 69.4, 74.5, 0.18, 0.23, 6.1, 1.0, 0.05, 20.53, 18},
	{"b18", 111241, 114589, 3320, 212, 15.28, 52.8, 58.5, 0.20, 0.22, 5.7, 4.7, 0.15, 215.99, 36},
}

// PaperRowFor returns the paper row matching a profile name ("b03a" ->
// "b03").
func PaperRowFor(name string) (PaperRow, bool) {
	for _, r := range PaperRows {
		if r.Name == name || r.Name+"a" == name {
			return r, true
		}
	}
	return PaperRow{}, false
}
