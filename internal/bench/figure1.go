// Package bench provides the experimental workloads of the reproduction:
// the hand-built Figure-1 circuit, deterministic generators for ITC99-analog
// benchmarks matched to the profiles of DAC'15 Table 1, and the harness
// that runs the baseline ("Base") and the control-signal technique ("Ours")
// to regenerate the table.
//
// The real ITC99 gate-level netlists are not redistributable inside this
// repository, so the generators synthesize analog circuits through the
// internal/rtl + internal/synth flow; DESIGN.md documents why this
// substitution preserves the behaviors the algorithms key on.
package bench

import (
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// Figure1Design reproduces the 3-bit word of benchmark b03 shown in the
// paper's Figure 1. Each bit of register "out" is a 3-input NAND whose
// first two subtrees (selecting CODA0/CODA1 under decoded controls
// U202/U255) are similar across bits, while the third subtree combines the
// shared control signals U201 and U221 differently per bit (selecting
// RU2/RU3). Assigning U201 = 0 — its controlling value for the NAND gates
// it feeds — removes every dissimilar subtree and leaves fully similar
// cones, so the word becomes identifiable; assigning U221 = 0 removes only
// the first two bits' dissimilar subtrees, as the paper walks through.
//
// A second 2-bit register "w2" supplies the U218/U219 nets of the paper's
// grouping example.
func Figure1Design() *rtl.Design {
	nand := func(args ...rtl.BitExpr) rtl.BitExpr { return rtl.BOp{Kind: logic.Nand, Args: args} }
	in := func(name string, bit int) rtl.BitExpr { return rtl.Bit(name, bit) }
	w := func(name string) rtl.BitExpr { return rtl.Bit(name, 0) }

	d := &rtl.Design{
		Name: "figure1",
		Inputs: []rtl.Signal{
			{Name: "coda0", Width: 3},
			{Name: "coda1", Width: 3},
			{Name: "ru2", Width: 3},
			{Name: "ru3", Width: 3},
			{Name: "p", Width: 1}, {Name: "q", Width: 1},
			{Name: "s", Width: 1}, {Name: "r", Width: 1},
			{Name: "t", Width: 1}, {Name: "u", Width: 1}, {Name: "v", Width: 1},
			{Name: "g0", Width: 2}, {Name: "g1", Width: 2},
		},
		Wires: []rtl.Wire{
			// Selector decode feeding the *similar* subtrees (the paper's
			// U202/U255): never control-signal candidates.
			{Name: "u202", Width: 1, Bits: []rtl.BitExpr{nand(w("t"), w("u"))}},
			{Name: "u255", Width: 1, Bits: []rtl.BitExpr{nand(w("t"), w("v"))}},
			// Common fanin cone of the dissimilar subtrees (the red circle):
			// U223 feeds both U201 and U221, so it is pruned as dominated.
			{Name: "u223", Width: 1, Bits: []rtl.BitExpr{nand(w("p"), w("q"))}},
			{Name: "u201", Width: 1, Bits: []rtl.BitExpr{nand(w("u223"), w("r"))}},
			{Name: "u221", Width: 1, Bits: []rtl.BitExpr{nand(w("u223"), w("s"))}},
		},
		Regs: []*rtl.Reg{
			{
				Name:  "out",
				Width: 3,
				NextBits: []rtl.BitExpr{
					nand(
						nand(in("coda0", 0), w("u202")),
						nand(in("coda1", 0), w("u255")),
						nand(in("ru2", 0), w("u221"), w("u201")),
					),
					nand(
						nand(in("coda0", 1), w("u202")),
						nand(in("coda1", 1), w("u255")),
						nand(in("ru3", 1), w("u221"), w("u201")),
					),
					nand(
						nand(in("coda0", 2), w("u202")),
						nand(in("coda1", 2), w("u255")),
						nand(nand(in("ru3", 2), w("u221")), w("u201")),
					),
				},
			},
			{
				Name:  "w2",
				Width: 2,
				NextBits: []rtl.BitExpr{
					nand(in("g0", 0), in("g1", 0), w("u202")),
					nand(in("g0", 1), in("g1", 1), w("u202")),
				},
			},
		},
		Outputs: []rtl.Output{
			{Name: "zo", Expr: rtl.RedOr{A: rtl.Ref{Name: "out"}}},
			{Name: "z2", Expr: rtl.RedOr{A: rtl.Ref{Name: "w2"}}},
		},
	}
	return d
}

// Figure1Circuit synthesizes Figure1Design into a gate-level netlist and
// returns the netlist together with the D-input nets of the 3-bit word.
func Figure1Circuit() (*netlist.Netlist, []netlist.NetID, error) {
	res, err := synth.Synthesize(Figure1Design(), synth.Options{})
	if err != nil {
		return nil, nil, err
	}
	return res.NL, res.RegRoots["out"], nil
}
