package bench

import (
	"testing"

	"gatewords/internal/core"
)

// TestLargeProfiles runs the full-size benchmarks (b14a..b18a). It takes a
// few seconds, so it is skipped under -short.
func TestLargeProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("large benchmarks skipped in -short mode")
	}
	for _, p := range Profiles {
		if p.TargetGates <= 10000 {
			continue
		}
		gen := generated(t, p)
		if err := gen.NL.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", p.Name, err)
		}
		row := Measure(gen, core.Options{})
		pr, _ := PaperRowFor(p.Name)
		if row.Ours.FullyFound < row.Base.FullyFound {
			t.Errorf("%s: ours worse than base", p.Name)
		}
		if row.Ours.NotFound > row.Base.NotFound {
			t.Errorf("%s: ours leaves more unfound than base", p.Name)
		}
		diff := row.Ours.FullyFoundPct() - pr.OursFull
		if diff < -10 || diff > 10 {
			t.Errorf("%s: ours full %.1f vs paper %.1f", p.Name, row.Ours.FullyFoundPct(), pr.OursFull)
		}
	}
}
