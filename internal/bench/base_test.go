package bench

import (
	"strings"
	"testing"
)

// TestGenerateBaseResolution is the regression table for derived-profile
// resolution: a derived profile (Base != "") used to resolve at package init
// and panic the whole process on a typo; resolution is now deferred into
// Generate, which must return an error for an unknown base and resolve known
// bases with the derived profile's own Name and Scan setting.
func TestGenerateBaseResolution(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile Profile
		wantErr string
	}{
		{
			name:    "known base resolves",
			profile: scanVariant("b08x", "b08a"),
		},
		{
			name:    "unknown base is an error, not a panic",
			profile: scanVariant("bads", "no-such-profile"),
			wantErr: `unknown base profile "no-such-profile"`,
		},
		{
			name:    "unknown base without scan",
			profile: Profile{Name: "bad", Base: "nope", Seed: 1},
			wantErr: `unknown base profile "nope"`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gen, err := tc.profile.Generate()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Generate() succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if gen.Profile.Name != tc.profile.Name {
				t.Errorf("resolved profile name %q, want %q", gen.Profile.Name, tc.profile.Name)
			}
			if !gen.Profile.Scan {
				t.Error("scan variant lost Scan during base resolution")
			}
			if gen.NL == nil || gen.NL.NetCount() == 0 {
				t.Error("resolved profile generated an empty netlist")
			}
		})
	}
}
