package bench

import (
	"math"
	"testing"

	"gatewords/internal/core"
	"gatewords/internal/refwords"
	"gatewords/internal/verilog"
)

// generateAll builds every profile once per test binary run.
var suiteCache = map[string]*Generated{}

func generated(t *testing.T, p Profile) *Generated {
	t.Helper()
	if g, ok := suiteCache[p.Name]; ok {
		return g
	}
	g, err := p.Generate()
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	suiteCache[p.Name] = g
	return g
}

func smallProfiles() []Profile {
	var out []Profile
	for _, p := range Profiles {
		if p.TargetGates <= 10000 {
			out = append(out, p)
		}
	}
	return out
}

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range smallProfiles() {
		gen := generated(t, p)
		if err := gen.NL.Validate(); err != nil {
			t.Errorf("%s: invalid netlist: %v", p.Name, err)
		}
		pr, ok := PaperRowFor(p.Name)
		if !ok {
			t.Errorf("%s: no paper row", p.Name)
			continue
		}
		if len(gen.Refs) != pr.Words {
			t.Errorf("%s: %d reference words, paper has %d", p.Name, len(gen.Refs), pr.Words)
		}
		st := gen.NL.ComputeStats()
		if st.DFFs != pr.FFs {
			t.Errorf("%s: %d FFs, paper has %d", p.Name, st.DFFs, pr.FFs)
		}
		gates := st.Gates + st.DFFs
		if math.Abs(float64(gates-pr.Gates))/float64(pr.Gates) > 0.15 {
			t.Errorf("%s: %d gates vs paper %d (>15%% off)", p.Name, gates, pr.Gates)
		}
		if math.Abs(float64(gen.NL.NetCount()-pr.Nets))/float64(pr.Nets) > 0.15 {
			t.Errorf("%s: %d nets vs paper %d (>15%% off)", p.Name, gen.NL.NetCount(), pr.Nets)
		}
		bits := 0
		for _, w := range gen.Refs {
			bits += w.Size()
		}
		avg := float64(bits) / float64(len(gen.Refs))
		if math.Abs(avg-pr.AvgSize) > 0.7 {
			t.Errorf("%s: avg word size %.2f vs paper %.2f", p.Name, avg, pr.AvgSize)
		}
	}
}

// TestNeverWorseThanBase pins the paper's headline observation: on every
// benchmark, Ours fully finds at least as many words as Base and leaves at
// most as many unfound.
func TestNeverWorseThanBase(t *testing.T) {
	for _, p := range smallProfiles() {
		row := Measure(generated(t, p), core.Options{})
		if row.Ours.FullyFound < row.Base.FullyFound {
			t.Errorf("%s: ours %d full < base %d", p.Name, row.Ours.FullyFound, row.Base.FullyFound)
		}
		if row.Ours.NotFound > row.Base.NotFound {
			t.Errorf("%s: ours %d notfound > base %d", p.Name, row.Ours.NotFound, row.Base.NotFound)
		}
	}
}

// TestTableOneShape checks each measured row against the paper's row within
// coarse tolerances — the reproduction's headline claim.
func TestTableOneShape(t *testing.T) {
	for _, p := range smallProfiles() {
		pr, _ := PaperRowFor(p.Name)
		row := Measure(generated(t, p), core.Options{})
		if math.Abs(row.Base.FullyFoundPct()-pr.BaseFull) > 10 {
			t.Errorf("%s: base full %.1f vs paper %.1f", p.Name, row.Base.FullyFoundPct(), pr.BaseFull)
		}
		if math.Abs(row.Ours.FullyFoundPct()-pr.OursFull) > 10 {
			t.Errorf("%s: ours full %.1f vs paper %.1f", p.Name, row.Ours.FullyFoundPct(), pr.OursFull)
		}
		if math.Abs(row.Ours.NotFoundPct()-pr.OursNF) > 10 {
			t.Errorf("%s: ours notfound %.1f vs paper %.1f", p.Name, row.Ours.NotFoundPct(), pr.OursNF)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("b08a")
	g1, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := verilog.WriteString(g1.NL)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := verilog.WriteString(g2.NL)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("generation is not deterministic")
	}
}

func TestGeneratedVerilogRoundTrips(t *testing.T) {
	p, _ := ProfileByName("b12a")
	gen := generated(t, p)
	text, err := verilog.WriteString(gen.NL)
	if err != nil {
		t.Fatal(err)
	}
	back, err := verilog.Parse("b12a.v", text)
	if err != nil {
		t.Fatalf("generated benchmark does not re-parse: %v", err)
	}
	// The round-tripped netlist must produce identical Table-1 metrics
	// (reference words re-extracted from the parsed netlist's names).
	row1 := Measure(gen, core.Options{})
	g2 := &Generated{Profile: p, NL: back, Refs: refwords.Extract(back, refwords.Options{})}
	row2 := Measure(g2, core.Options{})
	if row1.Ours.FullyFound != row2.Ours.FullyFound || row1.Base.FullyFound != row2.Base.FullyFound {
		t.Errorf("metrics differ after round trip: %+v vs %+v", row1.Ours, row2.Ours)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("b03"); !ok {
		t.Error("short name lookup failed")
	}
	if _, ok := ProfileByName("b03a"); !ok {
		t.Error("full name lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

func TestPaperRowFor(t *testing.T) {
	if pr, ok := PaperRowFor("b18a"); !ok || pr.CtrlSignals != 36 {
		t.Errorf("PaperRowFor(b18a): %+v %v", pr, ok)
	}
}

func TestRunAllAndFormat(t *testing.T) {
	rows, err := RunAll([]Profile{Profiles[0], Profiles[4]}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(rows, true)
	for _, frag := range []string{"b03a", "b08a", "Base", "Ours", "paperOurs", "avg"} {
		if !containsStr(out, frag) {
			t.Errorf("table missing %q", frag)
		}
	}
}

func containsStr(s, frag string) bool {
	return len(s) >= len(frag) && (s == frag || len(frag) == 0 || indexOf(s, frag) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
