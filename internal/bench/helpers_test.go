package bench

import (
	"testing"

	"gatewords/internal/synth"
)

func mustSynthFigure1(t *testing.T) *synth.Result {
	t.Helper()
	res, err := synth.Synthesize(Figure1Design(), synth.Options{})
	if err != nil {
		t.Fatalf("synthesize figure1: %v", err)
	}
	return res
}
