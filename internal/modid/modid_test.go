package modid

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// synthWords synthesizes a design and returns the netlist plus the D-input
// word of each register.
func synthWords(t *testing.T, d *rtl.Design, opt synth.Options) (*netlist.Netlist, map[string][]netlist.NetID) {
	t.Helper()
	res, err := synth.Synthesize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.NL, res.RegRoots
}

func names(nl *netlist.Netlist, bits []netlist.NetID) []string {
	out := make([]string, len(bits))
	for i, b := range bits {
		out[i] = nl.NetName(b)
	}
	return out
}

func TestDiscoverMuxCell(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 4}, {Name: "b", Width: 4}, {Name: "s", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 4,
			Next: rtl.Mux{Sel: rtl.Ref{Name: "s"}, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}}},
	}
	nl, words := synthWords(t, d, synth.Options{MuxStyle: synth.MuxCell})
	mods := Discover(nl, [][]netlist.NetID{words["r"]})
	if len(mods) != 1 || mods[0].Kind != Mux {
		t.Fatalf("mods: %+v", mods)
	}
	m := mods[0]
	if nl.NetName(m.Select) != "s" {
		t.Errorf("select = %s", nl.NetName(m.Select))
	}
	if got := names(nl, m.Inputs[0]); got[0] != "a[0]" || got[3] != "a[3]" {
		t.Errorf("operand A = %v", got)
	}
	if got := names(nl, m.Inputs[1]); got[0] != "b[0]" {
		t.Errorf("operand B = %v", got)
	}
	if !strings.Contains(m.Describe(nl), "?") {
		t.Errorf("describe: %s", m.Describe(nl))
	}
}

func TestDiscoverNandMux(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 4}, {Name: "b", Width: 4}, {Name: "s", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 4,
			Next: rtl.Mux{Sel: rtl.Ref{Name: "s"}, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}}},
	}
	nl, words := synthWords(t, d, synth.Options{MuxStyle: synth.MuxNand})
	mods := Discover(nl, [][]netlist.NetID{words["r"]})
	if len(mods) != 1 || mods[0].Kind != Mux {
		t.Fatalf("four-NAND mux not recognized: %+v", mods)
	}
	m := mods[0]
	if nl.NetName(m.Select) != "s" {
		t.Errorf("select = %s", nl.NetName(m.Select))
	}
	// Orientation: sel=0 selects a.
	if got := names(nl, m.Inputs[0]); got[0] != "a[0]" {
		t.Errorf("sel=0 operand = %v, want the a bus", got)
	}
}

func TestDiscoverBitwiseAndInv(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 4}, {Name: "b", Width: 4}},
		Regs: []*rtl.Reg{
			{Name: "x", Width: 4, Next: rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
			{Name: "n", Width: 4, Next: rtl.Bin{Kind: logic.Nand, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
			{Name: "i", Width: 4, Next: rtl.Not{A: rtl.Ref{Name: "a"}}},
		},
	}
	nl, words := synthWords(t, d, synth.Options{})
	mods := Discover(nl, [][]netlist.NetID{words["x"], words["n"], words["i"]})
	if len(mods) != 3 {
		t.Fatalf("mods: %d", len(mods))
	}
	if mods[0].Kind != Bitwise || mods[0].Op != logic.Xor {
		t.Errorf("x: %+v", mods[0])
	}
	if mods[1].Kind != Bitwise || mods[1].Op != logic.Nand {
		t.Errorf("n: %+v", mods[1])
	}
	if mods[2].Kind != Inv {
		t.Errorf("i: %+v", mods[2])
	}
	if !strings.Contains(mods[2].Describe(nl), "~") {
		t.Errorf("describe inv: %s", mods[2].Describe(nl))
	}
}

func TestDiscoverAdder(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 6}, {Name: "b", Width: 6}},
		Regs: []*rtl.Reg{{Name: "s", Width: 6,
			Next: rtl.Add{A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}}},
	}
	nl, words := synthWords(t, d, synth.Options{})
	// The LSB is a plain XOR and the rest are sum XORs; classify the word
	// as the identification pipeline would deliver it (whole register).
	mods := Discover(nl, [][]netlist.NetID{words["s"]})
	if len(mods) != 1 || mods[0].Kind != Adder {
		t.Fatalf("adder not recognized: %+v", mods)
	}
	m := mods[0]
	if got := names(nl, m.Inputs[0]); got[0] != "a[0]" || got[5] != "a[5]" {
		t.Errorf("operand A = %v", got)
	}
	if got := names(nl, m.Inputs[1]); got[0] != "b[0]" {
		t.Errorf("operand B = %v", got)
	}
	if !strings.Contains(m.Describe(nl), "+") {
		t.Errorf("describe: %s", m.Describe(nl))
	}
}

func TestDiscoverIncrementerTail(t *testing.T) {
	// The identification pipeline groups an incrementer's bits 1..n-1 (bit
	// 0 is a NOT); modid must classify that tail word as an incrementer.
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "seed", Width: 1}},
		Regs:   []*rtl.Reg{{Name: "c", Width: 6, Next: rtl.Inc{A: rtl.Ref{Name: "c"}}}},
	}
	nl, words := synthWords(t, d, synth.Options{})
	tail := words["c"][1:]
	mods := Discover(nl, [][]netlist.NetID{tail})
	if len(mods) != 1 || mods[0].Kind != Incr {
		t.Fatalf("incrementer tail not recognized: %+v", mods)
	}
	if got := names(nl, mods[0].Inputs[0]); got[0] != "c_reg[1]" {
		t.Errorf("operand = %v", got)
	}
}

func TestDiscoverRejectsMixedColumns(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.And, x, a, b)
	nl.MustGate("g2", logic.Or, y, a, b)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if mods := Discover(nl, [][]netlist.NetID{{x, y}}); len(mods) != 0 {
		t.Errorf("mixed column classified: %+v", mods)
	}
}

func TestDiscoverRejectsSharedOperand(t *testing.T) {
	// All bits ANDed with the same net pair: operands are controls, not
	// words.
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.And, x, a, b)
	nl.MustGate("g2", logic.And, y, a, b)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if mods := Discover(nl, [][]netlist.NetID{{x, y}}); len(mods) != 0 {
		t.Errorf("shared-operand column classified: %+v", mods)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Mux: "mux", Bitwise: "bitwise", Inv: "inv", Pass: "pass",
		Adder: "adder", Incr: "incr", Unknown: "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}
