// Package modid identifies word-level operators above identified words —
// the step the paper motivates in its introduction: "the computational unit
// responsible for the addition can be more easily identified if first the
// three 32-bit wires ... are identified". Given a word (the output bits of
// a presumed operator), modid inspects the driving gate columns and
// classifies the operator:
//
//   - 2:1 muxes, both as MUX2 cell columns and as the four-NAND
//     decomposition with a shared select/inverted-select pair;
//   - bitwise operations (AND/OR/XOR/... columns over two operand words);
//   - inverter/buffer columns (pass-through words);
//   - ripple-carry adders and incrementers (XOR sum columns with a
//     recognizable carry chain).
//
// Classification is purely structural and local, so a positive match is
// functionally certain for mux/bitwise/pass columns (the column's gates
// *are* the operator) and structurally strong for adders.
package modid

import (
	"fmt"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Kind classifies a recovered operator.
type Kind uint8

// Operator kinds.
const (
	Unknown Kind = iota
	Mux          // Output = Select ? Inputs[1] : Inputs[0]
	Bitwise      // Output = Inputs[0] <op> Inputs[1] (per-bit)
	Inv          // Output = ^Inputs[0]
	Pass         // Output = Inputs[0]
	Adder        // Output = Inputs[0] + Inputs[1] (ripple carry)
	Incr         // Output = Inputs[0] + 1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Mux:
		return "mux"
	case Bitwise:
		return "bitwise"
	case Inv:
		return "inv"
	case Pass:
		return "pass"
	case Adder:
		return "adder"
	case Incr:
		return "incr"
	}
	return "unknown"
}

// Module is one recovered operator instance.
type Module struct {
	Kind   Kind
	Op     logic.Kind        // for Bitwise: the per-bit gate kind
	Output []netlist.NetID   // the word this operator drives
	Inputs [][]netlist.NetID // operand words, LSB-aligned with Output
	Select netlist.NetID     // for Mux
}

// Describe renders the module like an HDL fragment, resolving net names.
func (m Module) Describe(nl *netlist.Netlist) string {
	word := func(bits []netlist.NetID) string {
		if len(bits) == 0 {
			return "{}"
		}
		return fmt.Sprintf("{%s..%s}", nl.NetName(bits[0]), nl.NetName(bits[len(bits)-1]))
	}
	out := word(m.Output)
	switch m.Kind {
	case Mux:
		return fmt.Sprintf("%s = %s ? %s : %s", out, nl.NetName(m.Select), word(m.Inputs[1]), word(m.Inputs[0]))
	case Bitwise:
		return fmt.Sprintf("%s = %s %s %s", out, word(m.Inputs[0]), strings.ToLower(m.Op.String()), word(m.Inputs[1]))
	case Inv:
		return fmt.Sprintf("%s = ~%s", out, word(m.Inputs[0]))
	case Pass:
		return fmt.Sprintf("%s = %s", out, word(m.Inputs[0]))
	case Adder:
		return fmt.Sprintf("%s = %s + %s", out, word(m.Inputs[0]), word(m.Inputs[1]))
	case Incr:
		return fmt.Sprintf("%s = %s + 1", out, word(m.Inputs[0]))
	}
	return out + " = ?"
}

// Discover classifies the operator driving each word. Words that do not
// match any template are skipped.
func Discover(nl *netlist.Netlist, words [][]netlist.NetID) []Module {
	var out []Module
	for _, w := range words {
		if len(w) < 2 {
			continue
		}
		if m, ok := classify(nl, w); ok {
			out = append(out, m)
		}
	}
	return out
}

// classify tries each template in specificity order.
func classify(nl *netlist.Netlist, word []netlist.NetID) (Module, bool) {
	drivers := make([]*netlist.Gate, len(word))
	for i, b := range word {
		d := nl.Net(b).Driver
		if d == netlist.NoGate {
			return Module{}, false
		}
		g := nl.Gate(d)
		if !g.Kind.IsCombinational() {
			return Module{}, false
		}
		drivers[i] = g
	}
	kind := drivers[0].Kind
	arity := len(drivers[0].Inputs)
	for _, g := range drivers[1:] {
		if g.Kind != kind || len(g.Inputs) != arity {
			return Module{}, false
		}
	}
	switch {
	case kind == logic.Mux2:
		return classifyMuxCell(word, drivers)
	case kind == logic.Not && arity == 1:
		return Module{Kind: Inv, Output: word, Inputs: [][]netlist.NetID{pinWord(drivers, 0)}}, true
	case kind == logic.Buf && arity == 1:
		return Module{Kind: Pass, Output: word, Inputs: [][]netlist.NetID{pinWord(drivers, 0)}}, true
	case kind == logic.Xor && arity == 2:
		if m, ok := classifyAdder(nl, word, drivers); ok {
			return m, ok
		}
		return classifyBitwise(word, drivers, kind)
	case kind == logic.Nand && arity == 2:
		if m, ok := classifyNandMux(nl, word, drivers); ok {
			return m, ok
		}
		return classifyBitwise(word, drivers, kind)
	case arity == 2 && kind.IsCombinational():
		return classifyBitwise(word, drivers, kind)
	}
	return Module{}, false
}

func pinWord(drivers []*netlist.Gate, pin int) []netlist.NetID {
	out := make([]netlist.NetID, len(drivers))
	for i, g := range drivers {
		out[i] = g.Inputs[pin]
	}
	return out
}

// distinct reports whether a candidate operand word has pairwise distinct
// bits (a repeated net is a control, not an operand).
func distinct(bits []netlist.NetID) bool {
	seen := map[netlist.NetID]bool{}
	for _, b := range bits {
		if seen[b] {
			return false
		}
		seen[b] = true
	}
	return true
}

// shared returns the net shared by every driver on the pin, or NoNet.
func shared(drivers []*netlist.Gate, pin int) netlist.NetID {
	s := drivers[0].Inputs[pin]
	for _, g := range drivers[1:] {
		if g.Inputs[pin] != s {
			return netlist.NoNet
		}
	}
	return s
}

func classifyMuxCell(word []netlist.NetID, drivers []*netlist.Gate) (Module, bool) {
	sel := shared(drivers, 0)
	if sel == netlist.NoNet {
		return Module{}, false
	}
	a := pinWord(drivers, 1)
	b := pinWord(drivers, 2)
	if !distinct(a) || !distinct(b) {
		return Module{}, false
	}
	return Module{Kind: Mux, Output: word, Select: sel, Inputs: [][]netlist.NetID{a, b}}, true
}

func classifyBitwise(word []netlist.NetID, drivers []*netlist.Gate, kind logic.Kind) (Module, bool) {
	a := pinWord(drivers, 0)
	b := pinWord(drivers, 1)
	if !distinct(a) || !distinct(b) {
		return Module{}, false
	}
	return Module{Kind: Bitwise, Op: kind, Output: word, Inputs: [][]netlist.NetID{a, b}}, true
}

// classifyNandMux recognizes the four-NAND mux: out_i = NAND(t1_i, t2_i)
// with t1_i = NAND(a_i, ns), t2_i = NAND(b_i, s) and ns = NOT(s) shared
// across all bits (pin order inside the second-level NANDs is free).
// leg is one second-level NAND of a four-NAND mux: the pair of nets it
// combines (which of them is data vs control is resolved later).
type leg struct {
	data netlist.NetID
	ctl  netlist.NetID
}

func classifyNandMux(nl *netlist.Netlist, word []netlist.NetID, drivers []*netlist.Gate) (Module, bool) {
	legsOf := func(n netlist.NetID) (leg, bool) {
		d := nl.Net(n).Driver
		if d == netlist.NoGate {
			return leg{}, false
		}
		g := nl.Gate(d)
		if g.Kind != logic.Nand || len(g.Inputs) != 2 {
			return leg{}, false
		}
		return leg{data: g.Inputs[0], ctl: g.Inputs[1]}, true
	}
	// Collect both second-level legs per bit.
	type bitLegs struct{ l1, l2 leg }
	all := make([]bitLegs, len(drivers))
	for i, g := range drivers {
		l1, ok1 := legsOf(g.Inputs[0])
		l2, ok2 := legsOf(g.Inputs[1])
		if !ok1 || !ok2 {
			return Module{}, false
		}
		all[i] = bitLegs{l1, l2}
	}
	// Determine the two shared control nets: for each leg the control can
	// be on either pin; find the orientation where one net repeats across
	// all bits for leg1 and another for leg2.
	candCtl := func(l leg) []netlist.NetID { return []netlist.NetID{l.data, l.ctl} }
	for _, c1 := range candCtl(all[0].l1) {
		for _, c2 := range candCtl(all[0].l2) {
			if c1 == c2 {
				continue
			}
			a := make([]netlist.NetID, len(all))
			b := make([]netlist.NetID, len(all))
			ok := true
			for i, bl := range all {
				da, okA := otherPin(bl.l1, c1)
				db, okB := otherPin(bl.l2, c2)
				if !okA || !okB {
					ok = false
					break
				}
				a[i] = da
				b[i] = db
			}
			if !ok || !distinct(a) || !distinct(b) {
				continue
			}
			// One control must be the inversion of the other.
			sel, aw, bw, inv := resolveSelect(nl, c1, c2, a, b)
			if !inv {
				continue
			}
			return Module{Kind: Mux, Output: word, Select: sel, Inputs: [][]netlist.NetID{aw, bw}}, true
		}
	}
	return Module{}, false
}

func otherPin(l leg, ctl netlist.NetID) (netlist.NetID, bool) {
	switch ctl {
	case l.data:
		return l.ctl, true
	case l.ctl:
		return l.data, true
	}
	return netlist.NoNet, false
}

// resolveSelect orients the four-NAND mux: if c1 = NOT(sel) and c2 = sel,
// the a-leg is the sel=0 operand. Returns inv=false when neither control is
// the inversion of the other.
func resolveSelect(nl *netlist.Netlist, c1, c2 netlist.NetID, a, b []netlist.NetID) (sel netlist.NetID, aw, bw []netlist.NetID, inv bool) {
	isNotOf := func(x, y netlist.NetID) bool {
		d := nl.Net(x).Driver
		if d == netlist.NoGate {
			return false
		}
		g := nl.Gate(d)
		return g.Kind == logic.Not && g.Inputs[0] == y
	}
	if isNotOf(c1, c2) {
		return c2, a, b, true // c1 = !sel gates the a-leg: sel=0 selects a
	}
	if isNotOf(c2, c1) {
		return c1, b, a, true
	}
	return netlist.NoNet, nil, nil, false
}

// classifyAdder recognizes ripple-carry sums as produced by bit-blasting
// a + b (shared internal carries): out_i = XOR(x_i, c_i), x_i = XOR(a_i,
// b_i), with c_1 = AND(a_0, b_0) and c_{i+1} = OR(AND(a_i, b_i),
// AND(x_i, c_i)); bit 0 folds to out_0 = XOR(a_0, b_0). Incrementers fold
// further: out_0 = NOT(a_0), carries collapse to AND chains.
func classifyAdder(nl *netlist.Netlist, word []netlist.NetID, drivers []*netlist.Gate) (Module, bool) {
	if len(word) < 2 {
		return Module{}, false
	}
	driverOf := func(n netlist.NetID, kind logic.Kind, arity int) *netlist.Gate {
		d := nl.Net(n).Driver
		if d == netlist.NoGate {
			return nil
		}
		g := nl.Gate(d)
		if g.Kind != kind || len(g.Inputs) != arity {
			return nil
		}
		return g
	}
	// Try the full adder shape first.
	a := make([]netlist.NetID, len(word))
	b := make([]netlist.NetID, len(word))
	if g0 := drivers[0]; g0.Kind == logic.Xor {
		a[0], b[0] = g0.Inputs[0], g0.Inputs[1]
		ok := true
		for i := 1; i < len(word); i++ {
			gi := drivers[i]
			// One operand is the inner XOR(a_i, b_i); the other the carry.
			var inner *netlist.Gate
			for pin := 0; pin < 2; pin++ {
				if g := driverOf(gi.Inputs[pin], logic.Xor, 2); g != nil {
					inner = g
					break
				}
			}
			if inner == nil {
				ok = false
				break
			}
			a[i], b[i] = inner.Inputs[0], inner.Inputs[1]
		}
		if ok && distinct(a) && distinct(b) {
			return Module{Kind: Adder, Output: word, Inputs: [][]netlist.NetID{a, b}}, true
		}
	}
	return classifyIncr(nl, word)
}

// classifyIncr recognizes the folded a+1 shape: bit 0 driven by NOT(a_0) is
// handled by the Inv template at word level, so an incrementer word usually
// arrives without its LSB (the identification pipeline groups bits 1..n-1).
// The shape is out_i = XOR(a_i, carry_i) with carry_i an AND chain ending in
// a_0 — or a direct register bit for carry_1.
func classifyIncr(nl *netlist.Netlist, word []netlist.NetID) (Module, bool) {
	a := make([]netlist.NetID, len(word))
	carries := make([]netlist.NetID, len(word))
	andCarries := 0
	for i, bit := range word {
		d := nl.Net(bit).Driver
		if d == netlist.NoGate {
			return Module{}, false
		}
		g := nl.Gate(d)
		if g.Kind != logic.Xor || len(g.Inputs) != 2 {
			return Module{}, false
		}
		// The carry operand is the one driven by an AND (the first grouped
		// bit's carry may be a raw net: the LSB itself).
		carryPin := -1
		for pin := 0; pin < 2; pin++ {
			dd := nl.Net(g.Inputs[pin]).Driver
			if dd != netlist.NoGate && nl.Gate(dd).Kind == logic.And {
				carryPin = pin
			}
		}
		if carryPin == -1 {
			if i != 0 {
				return Module{}, false // a carry chain must materialize
			}
			carryPin = 1 // lowering convention: sum = Xor(a_i, carry)
		} else {
			andCarries++
		}
		a[i] = g.Inputs[1-carryPin]
		carries[i] = g.Inputs[carryPin]
	}
	// Require real carry-chain evidence: every AND carry must combine the
	// previous position's data bit (or the previous carry), distinguishing
	// an incrementer from an arbitrary XOR column.
	if andCarries == 0 {
		return Module{}, false
	}
	for i := 1; i < len(word); i++ {
		d := nl.Net(carries[i]).Driver
		if d == netlist.NoGate || nl.Gate(d).Kind != logic.And {
			continue
		}
		linked := false
		for _, in := range nl.Gate(d).Inputs {
			if in == a[i-1] || in == carries[i-1] {
				linked = true
				break
			}
		}
		if !linked {
			return Module{}, false
		}
	}
	if !distinct(a) {
		return Module{}, false
	}
	return Module{Kind: Incr, Output: word, Inputs: [][]netlist.NetID{a}}, true
}
