// Package netlint is the static-analysis gate for gate-level netlists: a
// registry of rules with stable IDs and severities, and a collecting engine
// that reports every violation in one pass instead of stopping at the first
// (the fail-fast complement is netlist.Validate, which wraps the same
// structural checks).
//
// The error-severity rules (NL0xx, NL100) reject netlists the downstream
// word-identification pipeline cannot process safely: bad arities, broken
// driver/fanout cross-indexes, multiply-driven nets, undriven non-PI nets,
// combinational cycles. The warn/info rules flag structure that is legal but
// suspicious — floating nets, PO-unreachable logic, constant-foldable gates,
// duplicated drivers, X sources — plus the paper-specific NL300 heuristic
// that surfaces anomalously high-fanout nets as candidate control signals
// (the relevant-signal discovery of DAC'15 §2.4 starts from exactly such
// nets).
//
// Output is deterministic: rules visit gates and nets in ID order and the
// engine sorts diagnostics by (rule, message), so two runs over the same
// netlist produce byte-identical text and JSON.
package netlint

import (
	"gatewords/internal/netlist"
	"gatewords/internal/scoap"
)

// Severity ranks a diagnostic. Error-severity diagnostics mean the netlist
// must not enter the pipeline; warnings are suspicious but processable;
// infos are observations.
type Severity uint8

// Severities, in ascending order.
const (
	Info Severity = iota
	Warn
	Error
)

// String returns "info", "warn" or "error".
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// SeverityFromString parses a Severity name; ok is false for unknown names.
func SeverityFromString(s string) (Severity, bool) {
	switch s {
	case "info":
		return Info, true
	case "warn":
		return Warn, true
	case "error":
		return Error, true
	}
	return Info, false
}

// Diagnostic is one finding. Gates and Nets carry the names of the involved
// elements (for a combinational cycle, Gates lists the members in cycle
// order); Message is self-contained and embeds the principal names.
type Diagnostic struct {
	Rule string `json:"rule"`
	Name string `json:"name"`
	// Family is the rule's family prefix ("NL0xx", "NL5xx"): a stable field
	// so downstream tooling (gatetriage, external consumers) can bucket
	// diagnostics without re-parsing rule IDs.
	Family   string   `json:"family"`
	Severity string   `json:"severity"`
	Message  string   `json:"message"`
	Gates    []string `json:"gates,omitempty"`
	Nets     []string `json:"nets,omitempty"`
}

// Family returns the family prefix of a rule ID: "NL003" → "NL0xx". IDs too
// short to carry a family collapse to themselves.
func Family(ruleID string) string {
	if len(ruleID) < 5 {
		return ruleID
	}
	return ruleID[:len(ruleID)-2] + "xx"
}

// Config selects which rules run. The zero value runs every structural rule;
// the semantic NL4xx family additionally requires Semantic (or an explicit
// Only entry naming the rule).
type Config struct {
	// Only, when non-empty, runs just the listed rules (matched by ID or
	// name). Unknown entries are ignored. Naming a semantic rule here runs
	// it even when Semantic is false.
	Only []string
	// Disable skips the listed rules (matched by ID or name). Disable is
	// applied after Only.
	Disable []string
	// Semantic enables the NL4xx rules, which lower the design into an AIG
	// and spend SAT effort proving facts (constant outputs, equivalent
	// drivers, dead mux branches). Off by default so lint stays fast.
	Semantic bool
	// SemanticBudget caps each semantic SAT query in solver conflicts.
	// Zero means the default budget; a negative value disables SAT
	// entirely, leaving only the structural-hash proofs.
	SemanticBudget int
}

func (c Config) enabled(r *Rule) bool {
	match := func(list []string) bool {
		for _, s := range list {
			if matchesRule(s, r) {
				return true
			}
		}
		return false
	}
	if len(c.Only) > 0 && !match(c.Only) {
		return false
	}
	if match(c.Disable) {
		return false
	}
	if r.Semantic && !c.Semantic && !match(c.Only) {
		return false
	}
	return true
}

// matchesRule reports whether a selector names the rule: its exact ID, its
// exact name, or a family prefix — any "NL"-prefixed string that is a proper
// prefix of the ID ("NL5" and "NL5xx"-style "NL50" both select NL50x rules).
func matchesRule(s string, r *Rule) bool {
	if s == r.ID || s == r.Name {
		return true
	}
	return matchesPrefix(s, r.ID)
}

// matchesPrefix reports whether s is a family-prefix selector matching rule
// ID id.
func matchesPrefix(s, id string) bool {
	if len(s) < 2 || len(s) >= len(id) || s[:2] != "NL" {
		return false
	}
	return id[:len(s)] == s
}

// KnownSelector reports whether s selects at least one registered rule — an
// exact ID, an exact name, or a family prefix like "NL5".
func KnownSelector(s string) bool {
	for i := range rules {
		if matchesRule(s, &rules[i]) {
			return true
		}
	}
	return false
}

// Result is the outcome of a lint run.
type Result struct {
	// Module is the design name.
	Module string `json:"module"`
	// Diagnostics are sorted by (rule, message) for determinism.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Errors, Warnings and Infos count the diagnostics by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Max returns the highest severity present; ok is false when the run is
// clean.
func (r *Result) Max() (Severity, bool) {
	switch {
	case r.Errors > 0:
		return Error, true
	case r.Warnings > 0:
		return Warn, true
	case r.Infos > 0:
		return Info, true
	}
	return Info, false
}

// ByRule returns the diagnostics of one rule (by ID).
func (r *Result) ByRule(id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

// context is the per-run state a rule writes into.
type context struct {
	nl    *netlist.Netlist
	cfg   Config
	rule  *Rule
	diags []Diagnostic

	// viols caches netlist.StructuralViolations across the NL0xx rules.
	viols     []netlist.Violation
	haveViols bool

	// sem caches the AIG lowering and simulation signatures across the
	// NL4xx rules; built lazily on first semantic rule.
	sem *semState

	// scoap caches the testability fixed point across the NL5xx rules;
	// built lazily on first testability rule.
	scoap *scoap.Result
}

func (c *context) violations() []netlist.Violation {
	if !c.haveViols {
		c.viols = c.nl.StructuralViolations()
		c.haveViols = true
	}
	return c.viols
}

// report emits one diagnostic for the rule currently running.
func (c *context) report(msg string, gates []string, nets []string) {
	c.diags = append(c.diags, Diagnostic{
		Rule:     c.rule.ID,
		Name:     c.rule.Name,
		Family:   Family(c.rule.ID),
		Severity: c.rule.Severity.String(),
		Message:  msg,
		Gates:    gates,
		Nets:     nets,
	})
}

// Run executes every enabled rule over the netlist and returns the sorted
// diagnostics. Run never mutates the netlist.
func Run(nl *netlist.Netlist, cfg Config) *Result {
	ctx := &context{nl: nl, cfg: cfg}
	for i := range rules {
		r := &rules[i]
		if !cfg.enabled(r) {
			continue
		}
		ctx.rule = r
		r.run(ctx)
	}
	sortDiagnostics(ctx.diags)
	res := &Result{Module: nl.Name, Diagnostics: ctx.diags}
	for _, d := range ctx.diags {
		switch d.Severity {
		case "error":
			res.Errors++
		case "warn":
			res.Warnings++
		default:
			res.Infos++
		}
	}
	return res
}
