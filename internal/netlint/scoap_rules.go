// The NL5xx family: testability dataflow rules built on the SCOAP fixed
// point (internal/scoap). Where NL300 asks a structural question (anomalous
// fanout), these ask the semantic version: how hard is each net to control
// and observe? Low-testability outliers are the canonical hardware-Trojan
// tell — trigger logic is designed to be near-impossible to activate, which
// is exactly what high SCOAP scores measure.
package netlint

import (
	"fmt"
	"math"
	"sort"

	"gatewords/internal/group"
	"gatewords/internal/netlist"
	"gatewords/internal/scoap"
)

// scoapMinNets gates the statistical NL5xx rules: below this many scored
// nets the mean/σ profile is too noisy to call anything an outlier.
const scoapMinNets = 20

// scoapSigmaK is the outlier threshold in standard deviations.
const scoapSigmaK = 3.0

// scoapResult lazily computes and caches the SCOAP scores for the run.
func (c *context) scoapResult() *scoap.Result {
	if c.scoap == nil {
		c.scoap = scoap.Compute(c.nl, scoap.Config{})
	}
	return c.scoap
}

// finiteStats returns mean and σ of the finite testability scores of
// fanout-bearing nets, plus how many nets were scored.
func finiteStats(nl *netlist.Netlist, r *scoap.Result) (mean, sigma float64, n int) {
	var sum, sumSq float64
	for ni := 0; ni < nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		if len(nl.Net(id).Fanout) == 0 && !nl.Net(id).IsPO {
			continue
		}
		t := r.Testability(id)
		if t == scoap.Inf {
			continue
		}
		sum += float64(t)
		sumSq += float64(t) * float64(t)
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(n)
	sigma = math.Sqrt(sumSq/float64(n) - mean*mean)
	return mean, sigma, n
}

// runLowTestability (NL500) reports clusters of connected low-testability
// nets. A net is low-testability when its finite SCOAP score sits ≥ kσ above
// the design profile; flagged nets connected through a common gate merge
// into one cluster, because Trojan trigger cones are contiguous — a lone
// awkward net is noise, a connected region of them is a candidate.
func runLowTestability(c *context) {
	r := c.scoapResult()
	mean, sigma, n := finiteStats(c.nl, r)
	if n < scoapMinNets {
		return
	}
	threshold := mean + scoapSigmaK*sigma
	flagged := make([]bool, c.nl.NetCount())
	var any bool
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		t := r.Testability(id)
		if t != scoap.Inf && float64(t) >= threshold {
			flagged[ni] = true
			any = true
		}
	}
	if !any {
		return
	}
	// Union flagged nets that share a gate (driver or reader) into clusters.
	parent := make([]int, c.nl.NetCount())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		g := c.nl.Gate(netlist.GateID(gi))
		out := int(g.Output)
		if out < 0 || out >= len(flagged) || !flagged[out] {
			continue
		}
		for _, in := range g.Inputs {
			if in >= 0 && int(in) < len(flagged) && flagged[in] {
				union(out, int(in))
			}
		}
	}
	// Collect clusters in root order (roots are minimal member IDs, so the
	// report order is deterministic).
	members := make(map[int][]netlist.NetID)
	var roots []int
	for ni := range flagged {
		if !flagged[ni] {
			continue
		}
		root := find(ni)
		if len(members[root]) == 0 {
			roots = append(roots, root)
		}
		members[root] = append(members[root], netlist.NetID(ni))
	}
	sort.Ints(roots)
	for _, root := range roots {
		cl := members[root]
		worst := scoap.Cost(0)
		names := make([]string, len(cl))
		for i, id := range cl {
			names[i] = c.nl.NetName(id)
			if t := r.Testability(id); t > worst {
				worst = t
			}
		}
		const maxNamed = 6
		listed := names
		more := ""
		if len(listed) > maxNamed {
			listed = listed[:maxNamed]
			more = fmt.Sprintf(", +%d more", len(names)-maxNamed)
		}
		c.report(fmt.Sprintf("low-testability cluster of %d net(s) %q%s: worst SCOAP score %d vs design mean %.1f (σ %.1f)",
			len(cl), listed, more, worst, mean, sigma), nil, names)
	}
}

// runScoapOutlier (NL501) flags gates whose output testability deviates by
// more than kσ from their own adjacency group (the §2.2 word-candidate
// runs). Bits of one word should be equally hard to reach; a member whose
// scores stand apart is either misgrouped or extra logic riding the word.
func runScoapOutlier(c *context) {
	r := c.scoapResult()
	const minGroup = 4
	for _, grp := range group.Adjacent(c.nl, group.Options{}) {
		if len(grp) < minGroup {
			continue
		}
		var sum, sumSq float64
		n := 0
		for _, id := range grp {
			if t := r.Testability(id); t != scoap.Inf {
				sum += float64(t)
				sumSq += float64(t) * float64(t)
				n++
			}
		}
		if n < minGroup {
			continue
		}
		mean := sum / float64(n)
		sigma := math.Sqrt(sumSq/float64(n) - mean*mean)
		if sigma == 0 {
			continue
		}
		for _, id := range grp {
			t := r.Testability(id)
			if t == scoap.Inf {
				continue
			}
			if math.Abs(float64(t)-mean) > scoapSigmaK*sigma {
				g := c.nl.Gate(c.nl.Net(id).Driver)
				c.report(fmt.Sprintf("gate %q (%s) output %q SCOAP score %d deviates from its adjacency group of %d (mean %.1f, σ %.1f)",
					g.Name, g.Kind, c.nl.NetName(id), t, len(grp), mean, sigma),
					[]string{g.Name}, []string{c.nl.NetName(id)})
			}
		}
	}
}

// runAlwaysX (NL502) reports driven nets the dataflow proves uncontrollable:
// both CC0 and CC1 are ∞, so the net can never carry a known value from the
// primary inputs — downstream logic computes on X forever. The structural
// sources (undriven read nets) are NL204's business; this rule reports the
// derived poisoning a gate-level view cannot see.
func runAlwaysX(c *context) {
	r := c.scoapResult()
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		n := c.nl.Net(id)
		if n.Driver == netlist.NoGate || !r.AlwaysX(id) {
			continue
		}
		if len(n.Fanout) == 0 && !n.IsPO {
			continue
		}
		co := "∞"
		if v := r.Observability(id); v != scoap.Inf {
			co = fmt.Sprintf("%d", v)
		}
		c.report(fmt.Sprintf("net %q (driven by %q) is always-X: uncontrollable from the primary inputs (CO %s)",
			n.Name, c.nl.Gate(n.Driver).Name, co),
			[]string{c.nl.Gate(n.Driver).Name}, []string{n.Name})
	}
}
