package netlint

import (
	"fmt"

	"gatewords/internal/aig"
	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// The NL4xx rules are semantic: instead of pattern-matching netlist
// structure they lower the whole combinational frame into an AIG and prove
// properties with the eqcheck solver. Three layers keep that affordable:
// structural hashing proves many equalities for free at lowering time, a
// shared 64-lane random-simulation pre-pass filters out everything a few
// random patterns already distinguish, and only the surviving candidates pay
// for SAT queries, each capped by Config.SemanticBudget conflicts and all of
// them together by maxSemanticQueries.

const (
	// defaultSemanticBudget is the per-query SAT conflict cap when
	// Config.SemanticBudget is zero. Small on purpose: lint queries are
	// tiny cones, and an undecided query just means no diagnostic.
	defaultSemanticBudget = 2000
	// semanticSimRounds is the number of 64-lane random rounds in the
	// shared pre-pass (so 64*semanticSimRounds patterns per net).
	semanticSimRounds = 8
	// maxSemanticQueries bounds the total SAT queries of one lint run; a
	// pathological design degrades to fewer diagnostics, never to an
	// unbounded run.
	maxSemanticQueries = 512
	// semanticSeed makes the pre-pass (and therefore the diagnostics)
	// deterministic across runs.
	semanticSeed = 0x2015dac1_51ab01ab
)

func (c Config) semanticMaxConflicts() int {
	if c.SemanticBudget != 0 {
		return c.SemanticBudget
	}
	return defaultSemanticBudget
}

// semState is the AIG lowering plus simulation evidence shared by every
// NL4xx rule in one run.
type semState struct {
	built bool
	g     *aig.AIG
	frame *aig.Frame

	// seen0/seen1 record, per AIG node (positive phase), whether any lane
	// of the pre-pass observed the node at 0 / at 1.
	seen0, seen1 []bool
	// rounds holds each pre-pass round's Sim64 node values, the raw
	// material for per-literal signatures.
	rounds [][]uint64

	queries int
}

// semantic lazily builds the shared state. When the lowering fails (cycles,
// bad arities — conditions the structural rules already flag) the semantic
// rules stand down rather than report on a graph they cannot model.
func (c *context) semantic() *semState {
	if c.sem != nil {
		return c.sem
	}
	c.sem = &semState{}
	g := aig.New()
	f, err := aig.AddFrame(g, c.nl, nil)
	if err != nil {
		return c.sem
	}
	s := c.sem
	s.built = true
	s.g = g
	s.frame = f
	s.seen0 = make([]bool, g.NumNodes())
	s.seen1 = make([]bool, g.NumNodes())
	rng := splitmix64{semanticSeed}
	words := make([]uint64, g.NumInputs())
	for round := 0; round < semanticSimRounds; round++ {
		for i := range words {
			words[i] = rng.next()
			if round == 0 {
				// Pin one all-zero and one all-one lane: the two
				// assignments most likely to expose non-constant nets.
				words[i] = words[i]&^uint64(1) | 1<<63
			}
		}
		vals := g.Sim64(words, nil)
		for n, w := range vals {
			if w != ^uint64(0) {
				s.seen0[n] = true
			}
			if w != 0 {
				s.seen1[n] = true
			}
		}
		s.rounds = append(s.rounds, vals)
	}
	return s
}

// splitmix64 is the same tiny deterministic generator eqcheck uses for its
// simulation lanes.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// litSeen reads the pre-pass evidence for a literal (sign-adjusted).
func (s *semState) litSeen(l aig.Lit) (see0, see1 bool) {
	n := l.Node()
	if n >= len(s.seen0) {
		// Literal created after the pre-pass (a miter); no evidence.
		return true, true
	}
	if l.Negated() {
		return s.seen1[n], s.seen0[n]
	}
	return s.seen0[n], s.seen1[n]
}

// litSig hashes the literal's pre-pass value vector: equal functions always
// hash equal, so signature buckets are complete candidate sets for NL401 and
// a mismatch is a free disproof.
func (s *semState) litSig(l aig.Lit) uint64 {
	h := uint64(1469598103934665603)
	for _, vals := range s.rounds {
		h ^= aig.Word(vals, l)
		h *= 1099511628211
	}
	return h
}

func (s *semState) solveOpts(maxConflicts int) eqcheck.Options {
	// The pre-pass already simulated more patterns than Solve would, so
	// skip Solve's own simulation stage and go straight to SAT.
	return eqcheck.Options{SimRounds: -1, MaxConflicts: maxConflicts}
}

// provablyConst classifies a literal: proved is true when l is the same
// value under every input assignment, with val that value. Pre-pass evidence
// short-circuits the common case (both values observed: not constant, no SAT
// spent); otherwise one SAT query settles the surviving phase.
func (s *semState) provablyConst(l aig.Lit, maxConflicts int) (val int, proved bool) {
	switch l {
	case aig.False:
		return 0, true
	case aig.True:
		return 1, true
	}
	see0, see1 := s.litSeen(l)
	if see0 && see1 {
		return 0, false
	}
	if s.queries >= maxSemanticQueries {
		return 0, false
	}
	s.queries++
	if !see1 {
		// Never observed at 1: candidate constant 0, proved if l is
		// unsatisfiable.
		if eqcheck.Solve(s.g, l, s.solveOpts(maxConflicts)).Status == eqcheck.Unsat {
			return 0, true
		}
		return 0, false
	}
	// Never observed at 0: candidate constant 1.
	if eqcheck.Solve(s.g, l.Not(), s.solveOpts(maxConflicts)).Status == eqcheck.Unsat {
		return 1, true
	}
	return 0, false
}

// runSemanticConst (NL400) reports combinational gate outputs that are
// provably the same value under every input assignment. This subsumes
// structure-local folds (NL202 sees tied pins; this sees any reason) and is
// exactly the evidence the reduction pipeline uses to justify propagating
// constants.
func runSemanticConst(c *context) {
	s := c.semantic()
	if !s.built {
		return
	}
	budget := c.cfg.semanticMaxConflicts()
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		g := c.nl.Gate(netlist.GateID(gi))
		if !g.Kind.IsCombinational() {
			continue
		}
		l, ok := s.frame.NetLit(g.Output)
		if !ok {
			continue
		}
		v, proved := s.provablyConst(l, budget)
		if !proved {
			continue
		}
		how := "SAT-proved"
		if l == aig.False || l == aig.True {
			how = "proved by structural hashing"
		}
		out := c.nl.NetName(g.Output)
		c.report(fmt.Sprintf("gate %q (%s) output %q is provably constant %d (%s)",
			g.Name, g.Kind, out, v, how),
			[]string{g.Name}, []string{out})
	}
}

// runSemanticDup (NL401) reports groups of combinational gates that provably
// compute the identical function but are not structurally identical — the
// duplicates NL203's (kind, canonical inputs) key cannot see, like an AND
// rebuilt as NOT(NAND) or a differently associated XOR tree. Grouping is
// three-tiered: identical AIG literals merge for free (structural hashing),
// signature buckets nominate the remaining candidates, and a miter SAT query
// confirms or refutes each nomination.
func runSemanticDup(c *context) {
	s := c.semantic()
	if !s.built {
		return
	}
	budget := c.cfg.semanticMaxConflicts()

	type group struct {
		lit     aig.Lit
		members []netlist.GateID
		viaSAT  bool
	}
	var groups []*group
	byLit := make(map[aig.Lit]*group)
	buckets := make(map[uint64][]*group)

	for gi := 0; gi < c.nl.GateCount(); gi++ {
		g := c.nl.Gate(netlist.GateID(gi))
		if !g.Kind.IsCombinational() {
			continue
		}
		l, ok := s.frame.NetLit(g.Output)
		if !ok || l == aig.False || l == aig.True {
			// Constant outputs are NL400's finding, not duplicates.
			continue
		}
		if gr, ok := byLit[l]; ok {
			gr.members = append(gr.members, netlist.GateID(gi))
			continue
		}
		h := s.litSig(l)
		var joined *group
		for _, gr := range buckets[h] {
			if s.queries >= maxSemanticQueries {
				break
			}
			s.queries++
			m := s.g.Xor(l, gr.lit)
			if eqcheck.Solve(s.g, m, s.solveOpts(budget)).Status == eqcheck.Unsat {
				joined = gr
				break
			}
		}
		if joined != nil {
			joined.members = append(joined.members, netlist.GateID(gi))
			joined.viaSAT = true
			byLit[l] = joined
			continue
		}
		gr := &group{lit: l, members: []netlist.GateID{netlist.GateID(gi)}}
		groups = append(groups, gr)
		byLit[l] = gr
		buckets[h] = append(buckets[h], gr)
	}

	for _, gr := range groups {
		if len(gr.members) < 2 {
			continue
		}
		// NL203 already reports groups whose members are structurally
		// identical; only a group spanning distinct structural keys is
		// news.
		keys := make(map[string]bool)
		for _, gi := range gr.members {
			keys[dupKey(c.nl, gi)] = true
		}
		if len(keys) < 2 {
			continue
		}
		names := make([]string, len(gr.members))
		for i, gi := range gr.members {
			names[i] = c.nl.Gate(gi).Name
		}
		how := "proved by structural hashing"
		if gr.viaSAT {
			how = "SAT-proved"
		}
		c.report(fmt.Sprintf("gates %q provably compute the identical function despite different structure (%s)",
			names, how), names, nil)
	}
}

// runDeadMuxBranch (NL402) reports MUX2 gates whose select is provably
// constant: one data branch — and its whole cone, if nothing else reads it —
// can never reach the output. The select may look perfectly alive
// structurally (a gate output with fanout); only the semantic proof exposes
// the dead branch.
func runDeadMuxBranch(c *context) {
	s := c.semantic()
	if !s.built {
		return
	}
	budget := c.cfg.semanticMaxConflicts()
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		g := c.nl.Gate(netlist.GateID(gi))
		if g.Kind != logic.Mux2 || len(g.Inputs) != 3 {
			continue
		}
		sel := g.Inputs[0]
		l, ok := s.frame.NetLit(sel)
		if !ok {
			continue
		}
		v, proved := s.provablyConst(l, budget)
		if !proved {
			continue
		}
		// Pin convention [sel, a, b]: sel=0 selects a, sel=1 selects b.
		dead := g.Inputs[2]
		pin := "1"
		if v == 1 {
			dead = g.Inputs[1]
			pin = "0"
		}
		c.report(fmt.Sprintf("mux %q select %q is provably constant %d: data pin %s (net %q) is never selected",
			g.Name, c.nl.NetName(sel), v, pin, c.nl.NetName(dead)),
			[]string{g.Name}, []string{c.nl.NetName(sel), c.nl.NetName(dead)})
	}
}
