package netlint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gatewords/internal/bench"
)

// TestGoldenB14Diagnostics pins the full JSON diagnostics of the generated
// b14-class benchmark against a checked-in golden file: any drift in rule
// behavior, message wording, ordering, or the benchmark generator itself
// shows up as a diff. Regenerate with NETLINT_GOLDEN_UPDATE=1.
func TestGoldenB14Diagnostics(t *testing.T) {
	p, ok := bench.ProfileByName("b14a")
	if !ok {
		t.Fatal("benchmark b14a not registered")
	}
	gen, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Run(gen.NL, Config{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "b14a_diagnostics.golden.json")
	if os.Getenv("NETLINT_GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with NETLINT_GOLDEN_UPDATE=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("b14a diagnostics drifted from golden (%d vs %d bytes); regenerate with NETLINT_GOLDEN_UPDATE=1 and review the diff",
			buf.Len(), len(want))
	}
}
