package netlint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Rule is one registered analysis. ID is stable across releases ("NL003");
// Name is the short human handle ("multi-driver"); Doc is one sentence for
// the -rules listing.
type Rule struct {
	ID       string
	Name     string
	Severity Severity
	Doc      string
	// Semantic marks the NL4xx rules that prove facts with an AIG and SAT;
	// they only run under Config.Semantic (or an explicit Only entry).
	Semantic bool
	run      func(*context)
}

// Rules returns the registry in ID order (a copy; the caller may not mutate
// the registered behavior).
func Rules() []Rule {
	out := make([]Rule, len(rules))
	copy(out, rules)
	return out
}

// rules is the registry. Keep it sorted by ID: the engine runs rules in this
// order and the -rules listing prints it as-is.
var rules = []Rule{
	{
		ID: "NL001", Name: "arity", Severity: Error,
		Doc: "gate has an input count (or kind) invalid for its cell type",
		run: structuralRule(netlist.CodeArity, netlist.CodeInvalidKind),
	},
	{
		ID: "NL002", Name: "graph-consistency", Severity: Error,
		Doc: "driver/fanout cross-indexes are inconsistent or reference invalid IDs",
		run: structuralRule(netlist.CodeBadOutput, netlist.CodeBadInput,
			netlist.CodeDriverIndex, netlist.CodeBadFanout, netlist.CodeFanoutReader),
	},
	{
		ID: "NL003", Name: "multi-driver", Severity: Error,
		Doc: "net is driven by more than one gate",
		run: structuralRule(netlist.CodeMultiDriver),
	},
	{
		ID: "NL004", Name: "undriven", Severity: Error,
		Doc: "net has no driver and is not a primary input",
		run: structuralRule(netlist.CodeUndriven),
	},
	{
		ID: "NL005", Name: "pi-driven", Severity: Error,
		Doc: "net is marked primary input but also has a driver",
		run: structuralRule(netlist.CodeDrivenPI),
	},
	{
		ID: "NL006", Name: "dup-gate-name", Severity: Error,
		Doc: "two gates share the same non-empty instance name",
		run: structuralRule(netlist.CodeDupGateName),
	},
	{
		ID: "NL100", Name: "comb-cycle", Severity: Error,
		Doc: "combinational gates form a cycle not broken by a flip-flop",
		run: runCombCycle,
	},
	{
		ID: "NL200", Name: "floating-net", Severity: Warn,
		Doc: "net has no fanout and is not a primary output",
		run: runFloatingNet,
	},
	{
		ID: "NL201", Name: "dead-logic", Severity: Warn,
		Doc: "gate output cannot reach any primary output (skipped when the design has none)",
		run: runDeadLogic,
	},
	{
		ID: "NL202", Name: "const-foldable", Severity: Info,
		Doc: "gate has tied input pins and folds to a simpler function",
		run: runConstFoldable,
	},
	{
		ID: "NL203", Name: "dup-driver", Severity: Info,
		Doc: "two gates compute the identical function over the identical inputs",
		run: runDupDriver,
	},
	{
		ID: "NL204", Name: "x-source", Severity: Warn,
		Doc: "undriven non-PI net is read by gates, injecting X into the cone below it",
		run: runXSource,
	},
	{
		ID: "NL300", Name: "ctrl-fanout", Severity: Info,
		Doc: "net fanout is anomalously high for the design: candidate control signal (DAC'15 §2.4 seed)",
		run: runCtrlFanout,
	},
	{
		ID: "NL400", Name: "semantic-const", Severity: Warn, Semantic: true,
		Doc: "gate output is provably constant over every input assignment (AIG + SAT proof)",
		run: runSemanticConst,
	},
	{
		ID: "NL401", Name: "semantic-dup", Severity: Info, Semantic: true,
		Doc: "structurally different gates provably compute the identical function (the duplicates NL203 misses)",
		run: runSemanticDup,
	},
	{
		ID: "NL402", Name: "dead-mux-branch", Severity: Warn, Semantic: true,
		Doc: "MUX2 select is provably constant, so one data branch can never be selected",
		run: runDeadMuxBranch,
	},
	{
		ID: "NL500", Name: "low-testability", Severity: Warn,
		Doc: "connected cluster of nets with SCOAP testability ≥ kσ above the design profile: candidate stealthy logic",
		run: runLowTestability,
	},
	{
		ID: "NL501", Name: "scoap-outlier", Severity: Warn,
		Doc: "gate whose SCOAP score deviates >kσ from its adjacency group: misgrouped bit or extra logic riding a word",
		run: runScoapOutlier,
	},
	{
		ID: "NL502", Name: "always-x", Severity: Warn,
		Doc: "driven net is provably uncontrollable (CC0 = CC1 = ∞): downstream logic computes on X",
		run: runAlwaysX,
	},
}

// structuralRule adapts the shared netlist.StructuralViolations checks
// (netlist.Validate joins the same list fail-fast style) into per-code lint
// rules.
func structuralRule(codes ...string) func(*context) {
	want := make(map[string]bool, len(codes))
	for _, c := range codes {
		want[c] = true
	}
	return func(c *context) {
		for _, v := range c.violations() {
			if !want[v.Code] {
				continue
			}
			var gates, nets []string
			if v.Gate != netlist.NoGate {
				gates = []string{c.nl.Gate(v.Gate).Name}
			}
			if v.Net != netlist.NoNet {
				nets = []string{c.nl.NetName(v.Net)}
			}
			c.report(v.Msg, gates, nets)
		}
	}
}

// runCombCycle reports each combinational strongly connected component with
// its member gates named.
func runCombCycle(c *context) {
	for _, comp := range c.nl.CombinationalSCCs() {
		names := make([]string, len(comp))
		for i, g := range comp {
			names[i] = c.nl.Gate(g).Name
		}
		const maxNamed = 6
		listed := names
		more := ""
		if len(listed) > maxNamed {
			listed = listed[:maxNamed]
			more = fmt.Sprintf(", +%d more", len(names)-maxNamed)
		}
		c.report(fmt.Sprintf("combinational cycle of %d gates: %q%s", len(comp), listed, more), names, nil)
	}
}

// runFloatingNet flags zero-fanout nets that are not primary outputs: unread
// inputs, dangling driven wires, and declared-but-unused nets.
func runFloatingNet(c *context) {
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		n := c.nl.Net(netlist.NetID(ni))
		if len(n.Fanout) > 0 || n.IsPO {
			continue
		}
		switch {
		case n.IsPI:
			c.report(fmt.Sprintf("input net %q is never read", n.Name), nil, []string{n.Name})
		case n.Driver != netlist.NoGate:
			c.report(fmt.Sprintf("net %q (driven by %q) has no fanout and is not an output",
				n.Name, c.nl.Gate(n.Driver).Name), []string{c.nl.Gate(n.Driver).Name}, []string{n.Name})
		default:
			c.report(fmt.Sprintf("net %q is declared but unused", n.Name), nil, []string{n.Name})
		}
	}
}

// runDeadLogic reports gates from which no primary output is reachable. The
// liveness wave runs backward from the PO nets through drivers (flip-flops
// included, so state feeding an observable cone is live). Designs with no
// POs skip the rule: everything would be trivially dead.
func runDeadLogic(c *context) {
	pos := c.nl.POs()
	if len(pos) == 0 {
		return
	}
	liveNet := make([]bool, c.nl.NetCount())
	liveGate := make([]bool, c.nl.GateCount())
	queue := make([]netlist.NetID, 0, len(pos))
	for _, po := range pos {
		liveNet[po] = true
		queue = append(queue, po)
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		d := c.nl.Net(n).Driver
		if d == netlist.NoGate || liveGate[d] {
			continue
		}
		liveGate[d] = true
		for _, in := range c.nl.Gate(d).Inputs {
			if in >= 0 && int(in) < len(liveNet) && !liveNet[in] {
				liveNet[in] = true
				queue = append(queue, in)
			}
		}
	}
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		if liveGate[gi] {
			continue
		}
		g := c.nl.Gate(netlist.GateID(gi))
		c.report(fmt.Sprintf("gate %q (%s) cannot reach any primary output", g.Name, g.Kind),
			[]string{g.Name}, []string{c.nl.NetName(g.Output)})
	}
}

// runConstFoldable flags gates whose tied (duplicated) input pins make them
// foldable: duplicate AND/OR legs are redundant, duplicate XOR legs cancel,
// a MUX2 with identical data pins ignores its select, and tied AOI/OAI
// product legs collapse.
func runConstFoldable(c *context) {
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		g := c.nl.Gate(netlist.GateID(gi))
		var why string
		switch g.Kind {
		case logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor:
			if dup := firstDup(g.Inputs); dup != netlist.NoNet {
				if g.Kind == logic.Xor || g.Kind == logic.Xnor {
					why = fmt.Sprintf("tied input %q: duplicated parity legs cancel", c.nl.NetName(dup))
				} else {
					why = fmt.Sprintf("tied input %q: duplicated leg is redundant", c.nl.NetName(dup))
				}
			}
		case logic.Mux2:
			if len(g.Inputs) == 3 && g.Inputs[1] == g.Inputs[2] {
				why = fmt.Sprintf("both data pins tied to %q: select is ignored", c.nl.NetName(g.Inputs[1]))
			}
		case logic.Aoi21, logic.Oai21:
			if len(g.Inputs) == 3 && g.Inputs[0] == g.Inputs[1] {
				why = fmt.Sprintf("tied product legs %q collapse", c.nl.NetName(g.Inputs[0]))
			}
		}
		if why != "" {
			c.report(fmt.Sprintf("gate %q (%s) is constant-foldable: %s", g.Name, g.Kind, why),
				[]string{g.Name}, []string{c.nl.NetName(g.Output)})
		}
	}
}

// firstDup returns the first net appearing on two pins, or NoNet.
func firstDup(ins []netlist.NetID) netlist.NetID {
	for i := 0; i < len(ins); i++ {
		for j := i + 1; j < len(ins); j++ {
			if ins[i] == ins[j] {
				return ins[i]
			}
		}
	}
	return netlist.NoNet
}

// runDupDriver groups gates by (kind, canonical input list) — inputs sorted
// for commutative kinds — and reports each group of two or more structurally
// identical gates once.
func runDupDriver(c *context) {
	groups := make(map[string][]netlist.GateID)
	var order []string
	for gi := 0; gi < c.nl.GateCount(); gi++ {
		key := dupKey(c.nl, netlist.GateID(gi))
		if len(groups[key]) == 0 {
			order = append(order, key)
		}
		groups[key] = append(groups[key], netlist.GateID(gi))
	}
	for _, key := range order {
		grp := groups[key]
		if len(grp) < 2 {
			continue
		}
		names := make([]string, len(grp))
		for i, g := range grp {
			names[i] = c.nl.Gate(g).Name
		}
		kind := c.nl.Gate(grp[0]).Kind
		c.report(fmt.Sprintf("gates %q are structurally identical %s drivers over the same inputs", names, kind),
			names, nil)
	}
}

// dupKey renders NL203's notion of structural identity: the gate kind plus
// the input list, sorted for commutative kinds. Two gates with equal keys are
// the structural duplicates NL203 reports; NL401 uses the same key to report
// only the semantic duplicates NL203 cannot see.
func dupKey(nl *netlist.Netlist, gi netlist.GateID) string {
	g := nl.Gate(gi)
	ins := append([]netlist.NetID(nil), g.Inputs...)
	switch g.Kind {
	case logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor:
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", g.Kind)
	for _, in := range ins {
		fmt.Fprintf(&sb, ":%d", in)
	}
	return sb.String()
}

// runXSource reports each undriven non-PI net that is actually read, with
// the size of the cone it poisons: a forward taint wave through gate outputs
// (flip-flops included — an X feeding a D pin corrupts the register).
func runXSource(c *context) {
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		n := c.nl.Net(netlist.NetID(ni))
		if n.Driver != netlist.NoGate || n.IsPI || len(n.Fanout) == 0 {
			continue
		}
		tainted := c.taintFrom(netlist.NetID(ni))
		c.report(fmt.Sprintf("net %q is an X source: undriven but read by %d gates (%d gates in its tainted cone)",
			n.Name, len(n.Fanout), tainted), nil, []string{n.Name})
	}
}

// taintFrom counts the gates reachable forward from src.
func (c *context) taintFrom(src netlist.NetID) int {
	taintedNet := make([]bool, c.nl.NetCount())
	taintedGate := make([]bool, c.nl.GateCount())
	taintedNet[src] = true
	queue := []netlist.NetID{src}
	count := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, f := range c.nl.Net(n).Fanout {
			if f < 0 || int(f) >= len(taintedGate) || taintedGate[f] {
				continue
			}
			taintedGate[f] = true
			count++
			out := c.nl.Gate(f).Output
			if out >= 0 && int(out) < len(taintedNet) && !taintedNet[out] {
				taintedNet[out] = true
				queue = append(queue, out)
			}
		}
	}
	return count
}

// ctrlFanoutMinNets gates NL300: below this many fanout-bearing nets the
// mean/σ statistics are too noisy to call anything anomalous.
const ctrlFanoutMinNets = 20

// runCtrlFanout implements the paper-specific heuristic: a net whose fanout
// sits far above the design's fanout profile (≥ mean + 3σ, and at least 8)
// is a candidate control signal — exactly the shape of the enables and mux
// selects that §2.4's relevant-signal discovery assigns controlling values
// to. Flagging them statically gives the pipeline (and a human) a shortlist
// before any cone matching runs.
func runCtrlFanout(c *context) {
	var sizes []int
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		if f := len(c.nl.Net(netlist.NetID(ni)).Fanout); f > 0 {
			sizes = append(sizes, f)
		}
	}
	if len(sizes) < ctrlFanoutMinNets {
		return
	}
	var sum, sumSq float64
	for _, s := range sizes {
		sum += float64(s)
		sumSq += float64(s) * float64(s)
	}
	mean := sum / float64(len(sizes))
	sigma := math.Sqrt(sumSq/float64(len(sizes)) - mean*mean)
	threshold := mean + 3*sigma
	if threshold < 8 {
		threshold = 8
	}
	for ni := 0; ni < c.nl.NetCount(); ni++ {
		n := c.nl.Net(netlist.NetID(ni))
		if f := len(n.Fanout); float64(f) >= threshold {
			c.report(fmt.Sprintf("net %q fanout %d is anomalous (design mean %.1f, σ %.1f): candidate control signal",
				n.Name, f, mean, sigma), nil, []string{n.Name})
		}
	}
}
