package netlint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// sortDiagnostics orders diagnostics by (rule, message, first net, first
// gate). Rules already visit elements in ID order, so this makes the full
// output deterministic — two runs over the same netlist are byte-identical.
func sortDiagnostics(ds []Diagnostic) {
	first := func(ss []string) string {
		if len(ss) == 0 {
			return ""
		}
		return ss[0]
	}
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		if fa, fb := first(a.Nets), first(b.Nets); fa != fb {
			return fa < fb
		}
		return first(a.Gates) < first(b.Gates)
	})
}

// WriteText emits one line per diagnostic:
//
//	error NL003 multi-driver: net "y" driven by both "g1" and "g2"
//
// followed by a summary line.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintf(w, "%-5s %s %s: %s\n", d.Severity, d.Rule, d.Name, d.Message); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s: %d error(s), %d warning(s), %d info(s)\n",
		r.Module, r.Errors, r.Warnings, r.Infos)
	return err
}

// WriteJSON emits the result as indented JSON. The encoding is
// deterministic: diagnostics are pre-sorted and the document contains no
// maps or timestamps.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a result produced by WriteJSON (for tests and downstream
// tools).
func ReadJSON(rd io.Reader) (*Result, error) {
	var res Result
	if err := json.NewDecoder(rd).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}
