package netlint

import (
	"fmt"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// lowTestabilityNetlist builds a design whose SCOAP profile has a clear
// outlier region: 60 cheap buffers plus a two-gate stack of wide ANDs whose
// controllability dwarfs the design mean.
func lowTestabilityNetlist() *netlist.Netlist {
	nl := netlist.New("lowtest")
	p := nl.MustNet("p")
	nl.MarkPI(p)
	bufs := make([]netlist.NetID, 60)
	for i := range bufs {
		b := nl.MustNet(fmt.Sprintf("b%02d", i))
		nl.MustGate(fmt.Sprintf("bg%02d", i), logic.Buf, b, p)
		nl.MarkPO(b)
		bufs[i] = b
	}
	w1 := nl.MustNet("wide1")
	nl.MustGate("wg1", logic.And, w1, bufs[:20]...)
	w2 := nl.MustNet("wide2")
	nl.MustGate("wg2", logic.And, w2, w1, bufs[20])
	nl.MarkPO(w2)
	return nl
}

// TestLowTestabilityCluster: NL500 reports the connected wide-AND stack as
// one cluster and nothing else.
func TestLowTestabilityCluster(t *testing.T) {
	res := Run(lowTestabilityNetlist(), Config{Only: []string{"NL500"}})
	diags := res.ByRule("NL500")
	if len(diags) != 1 {
		t.Fatalf("NL500 fired %d times, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if len(d.Nets) != 2 {
		t.Errorf("cluster nets = %v, want the two wide nets", d.Nets)
	}
	if !strings.Contains(d.Message, "cluster of 2") {
		t.Errorf("message %q does not name the cluster size", d.Message)
	}
	if d.Family != "NL5xx" {
		t.Errorf("family = %q, want NL5xx", d.Family)
	}
}

// scoapOutlierNetlist builds one adjacency group of twelve 2-input ANDs
// where eleven members read cheap PIs and one reads a 30-level XOR chain:
// the single expensive member deviates by √11 ≈ 3.3σ from its group.
func scoapOutlierNetlist() *netlist.Netlist {
	nl := netlist.New("outlier")
	p, q := nl.MustNet("p"), nl.MustNet("q")
	nl.MarkPI(p)
	nl.MarkPI(q)
	deep := p
	for i := 0; i < 30; i++ {
		x := nl.MustNet(fmt.Sprintf("x%02d", i))
		nl.MustGate(fmt.Sprintf("xg%02d", i), logic.Xor, x, deep, q)
		deep = x
	}
	for i := 0; i < 12; i++ {
		y := nl.MustNet(fmt.Sprintf("y%02d", i))
		a := p
		if i == 7 {
			a = deep
		}
		nl.MustGate(fmt.Sprintf("yg%02d", i), logic.And, y, a, q)
		nl.MarkPO(y)
	}
	return nl
}

// TestScoapOutlierGate: NL501 flags exactly the expensive member of the
// adjacency group.
func TestScoapOutlierGate(t *testing.T) {
	res := Run(scoapOutlierNetlist(), Config{Only: []string{"NL501"}})
	diags := res.ByRule("NL501")
	if len(diags) != 1 {
		t.Fatalf("NL501 fired %d times, want 1: %+v", len(diags), diags)
	}
	if len(diags[0].Gates) != 1 || diags[0].Gates[0] != "yg07" {
		t.Errorf("flagged gates = %v, want [yg07]", diags[0].Gates)
	}
}

// TestAlwaysXDerived: NL502 reports driven nets poisoned through register
// feedback — nets NL204's structural view cannot see (nothing is undriven).
func TestAlwaysXDerived(t *testing.T) {
	nl := netlist.New("xloop")
	p := nl.MustNet("p")
	nl.MarkPI(p)
	x, q := nl.MustNet("x"), nl.MustNet("q")
	nl.MustGate("g", logic.Xor, x, q, p) // x needs q known
	nl.MustGate("ff", logic.DFF, q, x)   // q needs x known: never initializable
	nl.MarkPO(q)
	res := Run(nl, Config{Only: []string{"NL502"}})
	diags := res.ByRule("NL502")
	if len(diags) != 2 {
		t.Fatalf("NL502 fired %d times, want 2 (x and q): %+v", len(diags), diags)
	}
	if nl204 := Run(nl, Config{Only: []string{"NL204"}}).ByRule("NL204"); len(nl204) != 0 {
		t.Errorf("NL204 fired %d times; the loop must be invisible structurally", len(nl204))
	}
}

// TestNL5xxSilentOnClean: the testability rules stay quiet on the clean
// fixture and on designs too small for the statistical rules.
func TestNL5xxSilentOnClean(t *testing.T) {
	res := Run(clean(), Config{Only: []string{"NL5"}})
	if len(res.Diagnostics) != 0 {
		t.Errorf("NL5xx fired on the clean fixture: %+v", res.Diagnostics)
	}
}

// TestFamilyPrefixSelection: Only/Disable accept family prefixes alongside
// exact IDs and names.
func TestFamilyPrefixSelection(t *testing.T) {
	nl := lowTestabilityNetlist()
	cases := []struct {
		name string
		cfg  Config
		want func(map[string]int) bool
		desc string
	}{
		{
			name: "only NL5 runs the whole family",
			cfg:  Config{Only: []string{"NL5"}},
			want: func(m map[string]int) bool { return m["NL500"] == 1 && m["NL200"] == 0 },
			desc: "NL500 fires, structural rules do not",
		},
		{
			name: "only NL50 also selects by longer prefix",
			cfg:  Config{Only: []string{"NL50"}},
			want: func(m map[string]int) bool { return m["NL500"] == 1 },
			desc: "NL500 fires",
		},
		{
			name: "disable NL5 silences the family",
			cfg:  Config{Disable: []string{"NL5"}},
			want: func(m map[string]int) bool { return m["NL500"] == 0 && m["NL501"] == 0 && m["NL502"] == 0 },
			desc: "no NL5xx diagnostics",
		},
		{
			name: "only NL4 prefix runs semantic rules without Semantic",
			cfg:  Config{Only: []string{"NL4"}},
			want: func(m map[string]int) bool {
				for id := range m {
					if !strings.HasPrefix(id, "NL4") {
						return false
					}
				}
				return true
			},
			desc: "only NL4xx diagnostics (if any)",
		},
		{
			name: "exact IDs and names still work",
			cfg:  Config{Only: []string{"low-testability"}},
			want: func(m map[string]int) bool { return m["NL500"] == 1 && len(m) == 1 },
			desc: "exactly NL500",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ruleIDs(Run(nl, tc.cfg))
			if !tc.want(got) {
				t.Errorf("%s: got %v, want %s", tc.name, got, tc.desc)
			}
		})
	}
}

// TestKnownSelector pins the selector vocabulary: IDs, names, family
// prefixes — and rejects non-matching strings.
func TestKnownSelector(t *testing.T) {
	for _, ok := range []string{"NL500", "NL5", "NL50", "NL", "multi-driver", "always-x"} {
		if !KnownSelector(ok) {
			t.Errorf("KnownSelector(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"NL9", "NL999", "bogus", "nl5", ""} {
		if KnownSelector(bad) {
			t.Errorf("KnownSelector(%q) = true, want false", bad)
		}
	}
}

// TestFamily pins the family derivation.
func TestFamily(t *testing.T) {
	cases := map[string]string{"NL001": "NL0xx", "NL100": "NL1xx", "NL500": "NL5xx", "X": "X"}
	for id, want := range cases {
		if got := Family(id); got != want {
			t.Errorf("Family(%q) = %q, want %q", id, got, want)
		}
	}
}
