package netlint

import (
	"reflect"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// semanticNetlist builds a design with one finding for each NL4xx rule:
//
//	y1 = a & b,  y2 = ~(a | b),  z = y1 & y2   — z provably 0 (NL400, SAT)
//	t  = a ^ a                                 — provably 0 (NL400, strash)
//	n1 = ~(a & b), n2 = ~n1                    — n2 ≡ y1 (NL401, strash)
//	m  = Mux2(z, d0, d1)                       — select provably 0 (NL402)
//
// The mux data pins are primary inputs so that m (≡ d0 under the constant
// select) does not itself join a gate-duplicate group.
func semanticNetlist() *netlist.Netlist {
	nl := netlist.New("sem")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	d0 := nl.MustNet("d0")
	d1 := nl.MustNet("d1")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPI(d0)
	nl.MarkPI(d1)
	y1 := nl.MustNet("y1")
	y2 := nl.MustNet("y2")
	z := nl.MustNet("z")
	tt := nl.MustNet("t")
	n1 := nl.MustNet("n1")
	n2 := nl.MustNet("n2")
	m := nl.MustNet("m")
	nl.MustGate("gy1", logic.And, y1, a, b)
	nl.MustGate("gy2", logic.Nor, y2, a, b)
	nl.MustGate("gz", logic.And, z, y1, y2)
	nl.MustGate("gt", logic.Xor, tt, a, a)
	nl.MustGate("gn1", logic.Nand, n1, a, b)
	nl.MustGate("gn2", logic.Not, n2, n1)
	nl.MustGate("gm", logic.Mux2, m, z, d0, d1)
	nl.MarkPO(m)
	nl.MarkPO(tt)
	nl.MarkPO(n2)
	return nl
}

func TestSemanticRulesGated(t *testing.T) {
	nl := semanticNetlist()
	res := Run(nl, Config{})
	for _, d := range res.Diagnostics {
		if strings.HasPrefix(d.Rule, "NL4") {
			t.Errorf("semantic rule %s ran without Config.Semantic: %s", d.Rule, d.Message)
		}
	}
	// An explicit Only entry overrides the gate.
	res = Run(nl, Config{Only: []string{"NL400"}})
	if len(res.ByRule("NL400")) == 0 {
		t.Error("Only=[NL400] did not run the semantic rule")
	}
}

func TestSemanticConst(t *testing.T) {
	nl := semanticNetlist()
	res := Run(nl, Config{Semantic: true})
	diags := res.ByRule("NL400")
	byGate := map[string]string{}
	for _, d := range diags {
		if len(d.Gates) == 1 {
			byGate[d.Gates[0]] = d.Message
		}
	}
	if msg, ok := byGate["gz"]; !ok {
		t.Errorf("NL400 missed gz (z = (a&b) & ~(a|b) is provably 0); got %v", diags)
	} else if !strings.Contains(msg, "constant 0") || !strings.Contains(msg, "SAT-proved") {
		t.Errorf("gz diagnostic should be a SAT proof of constant 0: %s", msg)
	}
	if msg, ok := byGate["gt"]; !ok {
		t.Errorf("NL400 missed gt (a^a folds to 0 structurally)")
	} else if !strings.Contains(msg, "structural hashing") {
		t.Errorf("gt should fold in the strash, not need SAT: %s", msg)
	}
	for g := range byGate {
		switch g {
		case "gz", "gt":
		default:
			t.Errorf("NL400 flagged non-constant gate %q: %s", g, byGate[g])
		}
	}
}

func TestSemanticConstSATDisabled(t *testing.T) {
	nl := semanticNetlist()
	res := Run(nl, Config{Semantic: true, SemanticBudget: -1})
	for _, d := range res.ByRule("NL400") {
		if strings.Contains(d.Message, "SAT-proved") {
			t.Errorf("negative budget must disable SAT, got %s", d.Message)
		}
	}
	// The strash-proved finding survives without any SAT.
	found := false
	for _, d := range res.ByRule("NL400") {
		if len(d.Gates) == 1 && d.Gates[0] == "gt" {
			found = true
		}
	}
	if !found {
		t.Error("strash-proved constant should not need the SAT budget")
	}
}

func TestSemanticDupStrash(t *testing.T) {
	nl := semanticNetlist()
	res := Run(nl, Config{Semantic: true})
	var hit bool
	for _, d := range res.ByRule("NL401") {
		has := func(n string) bool {
			for _, g := range d.Gates {
				if g == n {
					return true
				}
			}
			return false
		}
		if has("gy1") && has("gn2") {
			hit = true
			if !strings.Contains(d.Message, "structural hashing") {
				t.Errorf("AND vs NOT(NAND) is a strash identity, got: %s", d.Message)
			}
		}
	}
	if !hit {
		t.Errorf("NL401 missed gy1 ≡ gn2 (AND rebuilt as NOT(NAND)): %v", res.ByRule("NL401"))
	}
}

// TestSemanticDupSAT exercises the tier structural hashing cannot reach:
// differently associated XOR trees are distinct AIG nodes but the same
// function, so only the miter SAT query can merge them.
func TestSemanticDupSAT(t *testing.T) {
	nl := netlist.New("xorassoc")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	cc := nl.MustNet("c")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPI(cc)
	x1 := nl.MustNet("x1")
	x2 := nl.MustNet("x2")
	y1 := nl.MustNet("y1")
	y2 := nl.MustNet("y2")
	nl.MustGate("gx1", logic.Xor, x1, a, b)
	nl.MustGate("gx2", logic.Xor, x2, x1, cc)
	nl.MustGate("gy1", logic.Xor, y1, b, cc)
	nl.MustGate("gy2", logic.Xor, y2, a, y1)
	nl.MarkPO(x2)
	nl.MarkPO(y2)
	res := Run(nl, Config{Semantic: true})
	diags := res.ByRule("NL401")
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "gx2") && strings.Contains(d.Message, "gy2") {
			hit = true
			if !strings.Contains(d.Message, "SAT-proved") {
				t.Errorf("reassociated XOR needs the SAT tier, got: %s", d.Message)
			}
		}
	}
	if !hit {
		t.Errorf("NL401 missed (a^b)^c ≡ a^(b^c): %v", diags)
	}
}

// TestSemanticDupSkipsStructural: a pair NL203 already reports (identical
// kind and inputs) must not be re-reported by NL401.
func TestSemanticDupSkipsStructural(t *testing.T) {
	nl := netlist.New("structdup")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	u := nl.MustNet("u")
	v := nl.MustNet("v")
	nl.MustGate("g1", logic.And, u, a, b)
	nl.MustGate("g2", logic.And, v, b, a) // commutative: same dupKey
	nl.MarkPO(u)
	nl.MarkPO(v)
	res := Run(nl, Config{Semantic: true})
	if n := len(res.ByRule("NL203")); n != 1 {
		t.Fatalf("NL203 should own this pair, got %d diagnostics", n)
	}
	if ds := res.ByRule("NL401"); len(ds) != 0 {
		t.Errorf("NL401 must not duplicate NL203's finding: %v", ds)
	}
}

func TestDeadMuxBranch(t *testing.T) {
	nl := semanticNetlist()
	res := Run(nl, Config{Semantic: true})
	diags := res.ByRule("NL402")
	if len(diags) != 1 {
		t.Fatalf("want exactly the gm finding, got %v", diags)
	}
	d := diags[0]
	if d.Gates[0] != "gm" {
		t.Errorf("wrong mux flagged: %v", d.Gates)
	}
	if !strings.Contains(d.Message, "constant 0") || !strings.Contains(d.Message, `"d1"`) {
		t.Errorf("select z is constant 0, so data pin 1 (d1) is dead: %s", d.Message)
	}
}

// TestSemanticDeterministic: two runs over the same design must produce
// identical diagnostics (fixed simulation seed, ordered traversals).
func TestSemanticDeterministic(t *testing.T) {
	nl := semanticNetlist()
	r1 := Run(nl, Config{Semantic: true})
	r2 := Run(nl, Config{Semantic: true})
	if !reflect.DeepEqual(r1.Diagnostics, r2.Diagnostics) {
		t.Errorf("semantic lint is not deterministic:\n%v\nvs\n%v", r1.Diagnostics, r2.Diagnostics)
	}
}

// TestSemanticSkipsBrokenNetlist: when the AIG lowering fails (here: a
// combinational cycle), the semantic rules stand down silently and the
// structural rules still report the underlying problem.
func TestSemanticSkipsBrokenNetlist(t *testing.T) {
	nl := netlist.New("cyc")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	p := nl.MustNet("p")
	q := nl.MustNet("q")
	nl.MustGate("g1", logic.And, p, a, q)
	nl.MustGate("g2", logic.And, q, a, p)
	nl.MarkPO(q)
	res := Run(nl, Config{Semantic: true})
	if len(res.ByRule("NL100")) == 0 {
		t.Fatal("cycle not reported by NL100")
	}
	for _, d := range res.Diagnostics {
		if strings.HasPrefix(d.Rule, "NL4") {
			t.Errorf("semantic rule %s ran on an unlowerable netlist: %s", d.Rule, d.Message)
		}
	}
}
