package netlint

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// clean builds a minimal well-formed netlist: q = DFF(NAND(a, b)), q is PO.
func clean() *netlist.Netlist {
	nl := netlist.New("clean")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	y := nl.MustNet("y")
	q := nl.MustNet("q")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPO(q)
	nl.MustGate("g1", logic.Nand, y, a, b)
	nl.MustGate("ff", logic.DFF, q, y)
	return nl
}

func ruleIDs(res *Result) map[string]int {
	out := map[string]int{}
	for _, d := range res.Diagnostics {
		out[d.Rule]++
	}
	return out
}

// TestRuleTriggers runs each rule's minimal trigger netlist and checks the
// rule fires — and that the clean netlist stays silent.
func TestRuleTriggers(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Netlist
		want  string // rule ID that must fire
		count int    // expected diagnostics for that rule (0 = at least one)
	}{
		{
			name: "NL001 arity",
			build: func() *netlist.Netlist {
				nl := netlist.New("t")
				a := nl.MustNet("a")
				nl.MarkPI(a)
				y := nl.MustNet("y")
				nl.AddGateLenient("bad", logic.Nand, y, a) // NAND needs >= 2 inputs
				nl.MarkPO(y)
				return nl
			},
			want: "NL001", count: 1,
		},
		{
			name: "NL002 graph-consistency",
			build: func() *netlist.Netlist {
				nl := clean()
				// Corrupt a fanout list: point net q at gate 0, which does
				// not read it.
				nl.Net(nl.POs()[0]).Fanout = append(nl.Net(nl.POs()[0]).Fanout, 0)
				return nl
			},
			want: "NL002", count: 1,
		},
		{
			name: "NL003 multi-driver",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				y, _ := nl.NetByName("y")
				nl.AddGateLenient("g2", logic.Not, y, a)
				return nl
			},
			want: "NL003", count: 1,
		},
		{
			name: "NL004 undriven",
			build: func() *netlist.Netlist {
				nl := clean()
				f := nl.MustNet("floating_in")
				q2 := nl.MustNet("q2")
				nl.MustGate("g3", logic.Not, q2, f)
				nl.MarkPO(q2)
				return nl
			},
			want: "NL004", count: 1,
		},
		{
			name: "NL005 pi-driven",
			build: func() *netlist.Netlist {
				nl := clean()
				y, _ := nl.NetByName("y")
				nl.MarkPI(y)
				return nl
			},
			want: "NL005", count: 1,
		},
		{
			name: "NL006 dup-gate-name",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				z := nl.MustNet("z")
				nl.MustGate("g1", logic.Not, z, a) // name collides with the NAND
				nl.MarkPO(z)
				return nl
			},
			want: "NL006", count: 1,
		},
		{
			name: "NL100 comb-cycle",
			build: func() *netlist.Netlist {
				nl := clean()
				x := nl.MustNet("x")
				w := nl.MustNet("w")
				nl.MustGate("ring1", logic.Not, x, w)
				nl.MustGate("ring2", logic.Not, w, x)
				return nl
			},
			want: "NL100", count: 1,
		},
		{
			name: "NL200 floating-net",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				dangle := nl.MustNet("dangle")
				nl.MustGate("g2", logic.Not, dangle, a) // driven, never read
				return nl
			},
			want: "NL200", count: 1,
		},
		{
			name: "NL201 dead-logic",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				d1 := nl.MustNet("d1")
				d2 := nl.MustNet("d2")
				nl.MustGate("dead1", logic.Not, d1, a)
				nl.MustGate("dead2", logic.Not, d2, d1) // chain off any PO path
				return nl
			},
			want: "NL201", count: 2,
		},
		{
			name: "NL202 const-foldable",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				z := nl.MustNet("z")
				nl.MustGate("tied", logic.Xor, z, a, a)
				nl.MarkPO(z)
				return nl
			},
			want: "NL202", count: 1,
		},
		{
			name: "NL203 dup-driver",
			build: func() *netlist.Netlist {
				nl := clean()
				a, _ := nl.NetByName("a")
				b, _ := nl.NetByName("b")
				z1 := nl.MustNet("z1")
				z2 := nl.MustNet("z2")
				nl.MustGate("twin1", logic.Nand, z1, a, b)
				nl.MustGate("twin2", logic.Nand, z2, b, a) // commutative: same key
				nl.MarkPO(z1)
				nl.MarkPO(z2)
				return nl
			},
			want: "NL203", count: 1,
		},
		{
			name: "NL204 x-source",
			build: func() *netlist.Netlist {
				nl := clean()
				f := nl.MustNet("phantom")
				q2 := nl.MustNet("q2")
				nl.MustGate("reader", logic.Not, q2, f)
				nl.MarkPO(q2)
				return nl
			},
			want: "NL204", count: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(tc.build(), Config{})
			got := ruleIDs(res)
			if got[tc.want] == 0 {
				t.Fatalf("rule %s did not fire; diagnostics: %+v", tc.want, res.Diagnostics)
			}
			if tc.count > 0 && got[tc.want] != tc.count {
				t.Errorf("rule %s fired %d times, want %d: %+v", tc.want, got[tc.want], tc.count, res.ByRule(tc.want))
			}
		})
	}
}

func TestCleanNetlistIsSilent(t *testing.T) {
	res := Run(clean(), Config{})
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean netlist produced diagnostics: %+v", res.Diagnostics)
	}
	if _, any := res.Max(); any {
		t.Error("Max reported a severity on a clean run")
	}
}

func TestDupDriverGateTwinsShareGroup(t *testing.T) {
	nl := clean()
	a, _ := nl.NetByName("a")
	b, _ := nl.NetByName("b")
	z1 := nl.MustNet("z1")
	z2 := nl.MustNet("z2")
	z3 := nl.MustNet("z3")
	nl.MustGate("t1", logic.And, z1, a, b)
	nl.MustGate("t2", logic.And, z2, b, a)
	nl.MustGate("m1", logic.Mux2, z3, a, z1, z2) // ordered kind, unique
	for _, z := range []netlist.NetID{z1, z2, z3} {
		nl.MarkPO(z)
	}
	ds := Run(nl, Config{}).ByRule("NL203")
	if len(ds) != 1 || len(ds[0].Gates) != 2 {
		t.Fatalf("NL203 = %+v", ds)
	}
	if ds[0].Gates[0] != "t1" || ds[0].Gates[1] != "t2" {
		t.Errorf("group members = %v", ds[0].Gates)
	}
}

func TestMux2OrderedPinsNotDupDriver(t *testing.T) {
	nl := clean()
	a, _ := nl.NetByName("a")
	b, _ := nl.NetByName("b")
	y, _ := nl.NetByName("y")
	z1 := nl.MustNet("z1")
	z2 := nl.MustNet("z2")
	// Same pin multiset, different order: MUX2 is not commutative, so these
	// are NOT identical drivers.
	nl.MustGate("m1", logic.Mux2, z1, a, b, y)
	nl.MustGate("m2", logic.Mux2, z2, a, y, b)
	nl.MarkPO(z1)
	nl.MarkPO(z2)
	if ds := Run(nl, Config{}).ByRule("NL203"); len(ds) != 0 {
		t.Errorf("MUX2 pin order ignored: %+v", ds)
	}
}

func TestCombCycleDiagnosticNamesMembers(t *testing.T) {
	nl := clean()
	x := nl.MustNet("x")
	w := nl.MustNet("w")
	nl.MustGate("ring1", logic.Not, x, w)
	nl.MustGate("ring2", logic.Not, w, x)
	ds := Run(nl, Config{}).ByRule("NL100")
	if len(ds) != 1 {
		t.Fatalf("NL100 = %+v", ds)
	}
	if len(ds[0].Gates) != 2 || ds[0].Gates[0] != "ring1" || ds[0].Gates[1] != "ring2" {
		t.Errorf("cycle members = %v", ds[0].Gates)
	}
	if !strings.Contains(ds[0].Message, "ring1") {
		t.Errorf("message does not name a member: %s", ds[0].Message)
	}
}

func TestConfigOnlyAndDisable(t *testing.T) {
	nl := clean()
	a, _ := nl.NetByName("a")
	y, _ := nl.NetByName("y")
	nl.AddGateLenient("g2", logic.Not, y, a) // NL003
	nl.MustNet("floating")                   // NL004 + NL200

	if got := ruleIDs(Run(nl, Config{Only: []string{"NL003"}})); len(got) != 1 || got["NL003"] != 1 {
		t.Errorf("Only by ID: %v", got)
	}
	if got := ruleIDs(Run(nl, Config{Only: []string{"multi-driver"}})); len(got) != 1 || got["NL003"] != 1 {
		t.Errorf("Only by name: %v", got)
	}
	got := ruleIDs(Run(nl, Config{Disable: []string{"NL003", "floating-net"}}))
	if got["NL003"] != 0 || got["NL200"] != 0 || got["NL004"] == 0 {
		t.Errorf("Disable: %v", got)
	}
}

func TestResultCountsAndMax(t *testing.T) {
	nl := clean()
	a, _ := nl.NetByName("a")
	y, _ := nl.NetByName("y")
	nl.AddGateLenient("g2", logic.Not, y, a) // error
	dangle := nl.MustNet("dangle")
	nl.MustGate("g3", logic.Not, dangle, a) // warn (floating) + warn (dead)
	res := Run(nl, Config{})
	if res.Errors == 0 || res.Warnings == 0 {
		t.Fatalf("counts: %+v", res)
	}
	if sev, any := res.Max(); !any || sev != Error {
		t.Errorf("Max = %v %v", sev, any)
	}
}

// TestAcceptance is the issue's acceptance scenario: a netlist carrying a
// combinational cycle, a multi-driven net and a floating net reports all
// three in one run, names the cycle members, carries error severity, and
// the JSON serialization is byte-identical across runs.
func TestAcceptance(t *testing.T) {
	build := func() *netlist.Netlist {
		nl := clean()
		a, _ := nl.NetByName("a")
		y, _ := nl.NetByName("y")
		// Cycle.
		x := nl.MustNet("x")
		w := nl.MustNet("w")
		nl.MustGate("ring1", logic.Not, x, w)
		nl.MustGate("ring2", logic.Not, w, x)
		// Multi-driver.
		nl.AddGateLenient("second", logic.Not, y, a)
		// Floating.
		dangle := nl.MustNet("dangle")
		nl.MustGate("dr", logic.Not, dangle, a)
		return nl
	}
	res := Run(build(), Config{})
	got := ruleIDs(res)
	for _, want := range []string{"NL100", "NL003", "NL200"} {
		if got[want] == 0 {
			t.Errorf("missing %s; got %v", want, got)
		}
	}
	if cyc := res.ByRule("NL100"); len(cyc) == 0 || len(cyc[0].Gates) == 0 {
		t.Error("cycle diagnostic does not name gates")
	}
	if sev, any := res.Max(); !any || sev != Error {
		t.Errorf("max severity = %v %v, want error", sev, any)
	}
	var buf1, buf2 bytes.Buffer
	if err := res.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := Run(build(), Config{}).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("JSON output differs across identical runs")
	}
	back, err := ReadJSON(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Errors != res.Errors || len(back.Diagnostics) != len(res.Diagnostics) {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

func TestWriteTextFormat(t *testing.T) {
	nl := clean()
	a, _ := nl.NetByName("a")
	y, _ := nl.NetByName("y")
	nl.AddGateLenient("g2", logic.Not, y, a)
	var sb strings.Builder
	if err := Run(nl, Config{}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "error NL003 multi-driver:") {
		t.Errorf("text output:\n%s", out)
	}
	if !strings.Contains(out, "1 error(s)") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestCtrlFanoutHeuristic(t *testing.T) {
	nl := netlist.New("t")
	sel := nl.MustNet("sel")
	nl.MarkPI(sel)
	// 40 two-input gates; sel feeds every one (fanout 40), the partner nets
	// feed one each.
	for i := 0; i < 40; i++ {
		in := nl.MustNet(fmt.Sprintf("a%d", i))
		nl.MarkPI(in)
		out := nl.MustNet(fmt.Sprintf("o%d", i))
		nl.MustGate(fmt.Sprintf("g%d", i), logic.And, out, sel, in)
		nl.MarkPO(out)
	}
	ds := Run(nl, Config{Only: []string{"NL300"}}).ByRule("NL300")
	if len(ds) != 1 || ds[0].Nets[0] != "sel" {
		t.Fatalf("NL300 = %+v", ds)
	}
	if !strings.Contains(ds[0].Message, "candidate control signal") {
		t.Errorf("message: %s", ds[0].Message)
	}
}

func TestRulesRegistryStable(t *testing.T) {
	rs := Rules()
	if len(rs) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for i, r := range rs {
		if r.ID == "" || r.Name == "" || r.Doc == "" {
			t.Errorf("rule %d incomplete: %+v", i, r)
		}
		if seen[r.ID] || seen[r.Name] {
			t.Errorf("duplicate rule identity: %s/%s", r.ID, r.Name)
		}
		seen[r.ID], seen[r.Name] = true, true
		if i > 0 && rs[i-1].ID >= r.ID {
			t.Errorf("registry not sorted at %s", r.ID)
		}
	}
}
