package netlint

import (
	"bytes"
	"testing"

	"gatewords/internal/verilog"
)

// FuzzNetlint hardens the diagnostic front end: arbitrary input routed
// through the lenient parser and the full rule set must never panic, and two
// runs over the same input must produce byte-identical JSON diagnostics
// (the determinism contract of Run/WriteJSON).
func FuzzNetlint(f *testing.F) {
	seeds := []string{
		"",
		"module m; endmodule",
		"module m (a, y);\n input a;\n output y;\n BUF b (y, a);\nendmodule",
		"module m (a, y);\n input a;\n output y;\n not g1 (y, a);\n not g2 (y, a);\nendmodule", // multi-driver
		"module m (y);\n output y;\n wire x;\n not g1 (y, x);\n not g2 (x, y);\nendmodule",     // comb cycle
		"module m (a);\n input a;\n wire w;\nendmodule",                                        // floating + undriven
		"module m (a, y);\n input a;\n output y;\n nand g (y, a);\nendmodule",                  // bad arity
		"module m (a, q);\n input a;\n output q;\n DFF r (.D(a), .Q(q), .CK(a));\nendmodule",
		"module m (a, y);\n input a;\n output y;\n assign y = 1'b0;\nendmodule",
		"module m (a, y);\n input a;\n output y;\n xor t (y, a, a);\nendmodule", // const-foldable
		"module \\weird[1] (a);\n input a;\nendmodule",
		"module m (a); input a; wire w; /* unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := verilog.ParseLenient("fuzz.v", src)
		if err != nil {
			return
		}
		var run1, run2 bytes.Buffer
		if err := Run(nl, Config{}).WriteJSON(&run1); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := Run(nl, Config{}).WriteJSON(&run2); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(run1.Bytes(), run2.Bytes()) {
			t.Fatalf("nondeterministic diagnostics for %q:\n%s\n----\n%s", src, run1.String(), run2.String())
		}
	})
}
