package report

import (
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	doc := &Document{
		Tool:      "gatewords",
		Module:    "m",
		Technique: "control-signals",
		Stats:     Stats{Nets: 10, Gates: 5, DFFs: 2, PIs: 3, POs: 1},
		Words: []Word{
			{Bits: []string{"a", "b"}, Verified: true,
				ControlSignals: []string{"k"}, Assignment: map[string]int{"k": 0}},
		},
		ControlSignalsUsed: []string{"k"},
		Evaluation: &Evaluation{
			ReferenceWords: 1, FullyFound: 1, FullyFoundPct: 100,
			PerWord: map[string]string{"w_reg": "fully-found"},
		},
	}
	doc.SetRuntime(1500 * time.Millisecond)
	var sb strings.Builder
	if err := doc.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`"tool": "gatewords"`, `"fully_found_pct": 100`, `"runtime_seconds": 1.5`, `"assignment"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSON missing %q:\n%s", frag, out)
		}
	}
	back, err := Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != "m" || len(back.Words) != 1 || back.Words[0].Assignment["k"] != 0 {
		t.Errorf("round trip: %+v", back)
	}
	if back.Evaluation == nil || back.Evaluation.PerWord["w_reg"] != "fully-found" {
		t.Errorf("evaluation lost: %+v", back.Evaluation)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
