// Package report serializes identification results into stable
// machine-readable JSON for tooling built on top of the wordid CLI.
package report

import (
	"encoding/json"
	"io"
	"time"
)

// Document is the top-level JSON payload.
type Document struct {
	// Tool identifies the producer ("gatewords").
	Tool string `json:"tool"`
	// Module is the design name.
	Module string `json:"module"`
	// Technique is "control-signals", "shape-hashing", or "functional".
	Technique string `json:"technique"`
	// Stats summarizes the design.
	Stats Stats `json:"stats"`
	// Words are the identified words (multi-bit only unless IncludeAll).
	Words []Word `json:"words"`
	// ControlSignalsUsed / Found mirror the paper's control-signal column.
	ControlSignalsUsed  []string `json:"control_signals_used,omitempty"`
	ControlSignalsFound []string `json:"control_signals_found,omitempty"`
	// Evaluation is present when golden reference words were available.
	Evaluation *Evaluation `json:"evaluation,omitempty"`
	// Runtime is the identification wall time in seconds.
	Runtime float64 `json:"runtime_seconds"`
	// Interrupted is set when the run was cancelled or hit its deadline and
	// the document holds a partial result.
	Interrupted bool `json:"interrupted,omitempty"`
	// Failures lists recovered per-group panics: each named group
	// contributed no words, every other group's words are complete. Absent
	// on a healthy run.
	Failures []GroupFailure `json:"failures,omitempty"`
	// Degradations lists subgroups that hit a resource budget and fell back
	// to the full-structural match; DegradedGroups counts affected groups.
	Degradations   []Degradation `json:"degradations,omitempty"`
	DegradedGroups int           `json:"degraded_groups,omitempty"`
}

// GroupFailure is one recovered group-pipeline panic. The stack is omitted:
// it belongs in logs, not in a machine-readable result document.
type GroupFailure struct {
	Group   int    `json:"group"`
	Stage   string `json:"stage"`
	Message string `json:"message"`
}

// Degradation is one budget-triggered fallback to the structural match.
type Degradation struct {
	Group    int    `json:"group"`
	Subgroup string `json:"subgroup"`
	Reason   string `json:"reason"`
	Detail   string `json:"detail"`
}

// Stats mirrors the design statistics.
type Stats struct {
	Nets  int `json:"nets"`
	Gates int `json:"gates"`
	DFFs  int `json:"dffs"`
	PIs   int `json:"inputs"`
	POs   int `json:"outputs"`
}

// Word is one identified word.
type Word struct {
	Bits           []string       `json:"bits"`
	Verified       bool           `json:"verified"`
	ControlSignals []string       `json:"control_signals,omitempty"`
	Assignment     map[string]int `json:"assignment,omitempty"`
}

// Evaluation mirrors the paper's three metrics.
type Evaluation struct {
	ReferenceWords    int               `json:"reference_words"`
	FullyFound        int               `json:"fully_found"`
	PartiallyFound    int               `json:"partially_found"`
	NotFound          int               `json:"not_found"`
	FullyFoundPct     float64           `json:"fully_found_pct"`
	NotFoundPct       float64           `json:"not_found_pct"`
	FragmentationRate float64           `json:"fragmentation_rate"`
	PerWord           map[string]string `json:"per_word,omitempty"`
}

// Write emits the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// SetRuntime records a measured duration.
func (d *Document) SetRuntime(dur time.Duration) { d.Runtime = dur.Seconds() }

// Read parses a document (for tests and downstream tools).
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
