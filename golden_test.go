package gatewords

import (
	"os"
	"testing"
)

// TestGoldenFigure1File parses the stored Figure-1 netlist and checks it
// behaves identically to the in-memory circuit (file-based end-to-end
// path).
func TestGoldenFigure1File(t *testing.T) {
	ensureFigure1Testdata(t)
	d, err := ParseVerilogFile("testdata/figure1.v")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	if ev.ReferenceWords != 2 || ev.FullyFound != 2 {
		t.Errorf("figure1.v: %+v", ev)
	}
	if len(rep.ControlSignalsUsed) == 0 {
		t.Error("no control signals used on the golden figure-1 file")
	}
}

func ensureFigure1Testdata(t *testing.T) {
	t.Helper()
	if _, err := os.Stat("testdata/figure1.v"); err == nil {
		return
	}
	d, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteVerilogFile("testdata/figure1.v"); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSynopsysStyle parses the hand-written drive-strength-flavored
// netlist (NAND2X1 cells, _N_ register naming, named pins with clock pins
// to ignore) and pins the full expected outcome.
func TestGoldenSynopsysStyle(t *testing.T) {
	d, err := ParseVerilogFile("testdata/counter_style.v")
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.DFFs != 7 {
		t.Fatalf("stats: %+v", st)
	}
	refs := d.ReferenceWords()
	if len(refs) != 2 || refs[0].Name != "load_reg" || refs[1].Name != "sum_reg" {
		t.Fatalf("refs: %+v", refs)
	}

	// Baseline: the load word fragments ({bit0,bit1} match, 2/3 split off).
	base, err := IdentifyBaseline(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	bev := Evaluate(d, base)
	if bev.PerWord["load_reg"] != "partially-found" {
		t.Errorf("baseline load_reg: %s", bev.PerWord["load_reg"])
	}
	if bev.PerWord["sum_reg"] != "fully-found" {
		t.Errorf("baseline sum_reg: %s", bev.PerWord["sum_reg"])
	}

	// The technique recovers the load word through k1 = 0.
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	if ev.FullyFound != 2 {
		t.Fatalf("ours: %+v (per word %v)", ev, ev.PerWord)
	}
	foundK1 := false
	for _, w := range rep.Words {
		for _, c := range w.ControlSignals {
			if c == "k1" {
				foundK1 = true
				if w.Assignment["k1"] {
					t.Error("k1 must be assigned 0")
				}
			}
			if c == "dec" {
				t.Error("dominated net dec must not be a control signal")
			}
		}
	}
	if !foundK1 {
		t.Errorf("k1 not used; used: %v", rep.ControlSignalsUsed)
	}
}
